// FotakisOfl — Fotakis' deterministic primal–dual algorithm for classic
// (single-commodity) Online Facility Location [Fotakis, JDA 2007], in the
// potential-based formulation of [Nagarajan–Williamson 2013] that
// Algorithm 1 of the paper generalizes.
//
// This is exactly PD-OMFLP restricted to |S| = 1: constraints (1) and (3)
// only, no large/small distinction. It is implemented independently (not
// by delegation) so the test suite can cross-check the two codebases:
// PD-OMFLP on a single-commodity instance must produce the same facilities,
// assignments and duals as this class.
//
// Use through baseline/per_commodity.hpp to obtain the trivial
// O(|S|·log n)-competitive OMFLP baseline the paper mentions in §1.3.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "metric/distance_oracle.hpp"

namespace omflp {

class FotakisOfl final : public OnlineAlgorithm {
 public:
  FotakisOfl() = default;

  std::string name() const override { return "Fotakis-OFL"; }

  /// Requires a single-commodity context (|S| == 1); use the
  /// PerCommodityAdapter for multi-commodity instances.
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  /// Deletion policy: bid rollback, the single-commodity restriction of
  /// PD-OMFLP's — the departed request's posted bid min{a_j, d(F, j)} is
  /// shifted out of bids_ and its dual zeroed.
  void depart(RequestId id, const Request& request,
              SolutionLedger& ledger) override;

  double total_dual() const noexcept { return total_dual_; }
  /// Final dual a_r of every request, in arrival order.
  const std::vector<double>& duals() const noexcept { return duals_; }

  /// Checkpoint: facilities, past requests (duals, maintained facility
  /// distances, rollback flags), the posted bid row and the dual totals,
  /// all bitwise (the cost row is rebuilt by reset()).
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

 private:
  CostModelPtr cost_;
  std::unique_ptr<DistanceOracle> dist_;
  std::size_t num_points_ = 0;

  struct OpenRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
  };
  std::vector<OpenRecord> facilities_;

  struct PastRequest {
    PointId location = 0;
    double dual = 0.0;                         // zeroed by rollback
    double facility_dist = kInfiniteDistance;  // d(F, j), maintained
    bool departed = false;  // rollback guard: a bid withdraws only once
  };
  std::vector<PastRequest> past_;

  /// bids_[m] = Σ_j (min{a_j, d(F, j)} − d(m, j))+ over past requests.
  std::vector<double> bids_;
  /// f_m for the single-commodity configuration, materialized at reset
  /// (the cost model is immutable per run) so the event scan is a pure
  /// row sweep.
  std::vector<double> cost_row_;

  double total_dual_ = 0.0;
  std::vector<double> duals_;
};

}  // namespace omflp
