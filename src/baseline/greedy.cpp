#include "baseline/greedy.hpp"

#include <algorithm>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

/// facility_open for the greedy baselines: bid_mass is the accumulated
/// spend that triggered the buy (the rent account for RentOrBuy, 0
/// otherwise) and tightness the local threshold it crossed.
void emit_greedy_open(const SolutionLedger& ledger, FacilityId id,
                      CommodityId commodity, double bid_mass,
                      double tightness) {
  if (!obs::tracing()) return;
  const OpenFacilityRecord& record = ledger.facility(id);
  TraceEvent ev;
  ev.kind = TraceEventKind::kFacilityOpen;
  ev.request = ledger.num_requests() - 1;
  ev.commodity = commodity;
  ev.facility = id;
  ev.point = record.location;
  ev.config_size = record.config.count();
  ev.cost = record.open_cost;
  ev.bid_mass = bid_mass;
  ev.tightness = tightness;
  obs::emit(ev);
}

}  // namespace

void AlwaysOpen::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "AlwaysOpen::reset: incomplete context");
  num_commodities_ = context.num_commodities();
}

void AlwaysOpen::serve(const Request& request, SolutionLedger& ledger) {
  const FacilityId id =
      ledger.open_facility(request.location, request.commodities);
  emit_greedy_open(ledger, id, kInvalidCommodity, 0.0, 0.0);
  request.commodities.for_each(
      [&](CommodityId e) { ledger.assign(e, id); });
}

void NearestOrOpen::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "NearestOrOpen::reset: incomplete context");
  cost_ = context.cost;
  dist_ = std::make_unique<DistanceOracle>(context.metric);
  num_commodities_ = context.num_commodities();
  offering_.assign(num_commodities_, {});
}

std::pair<double, FacilityId> NearestOrOpen::nearest_offering(
    CommodityId e, PointId p) const {
  OMFLP_PERF_ADD(facilities_probed, offering_[e].size());
  double best = kInfiniteDistance;
  FacilityId best_id = kInvalidFacility;
  for (const OpenRecord& f : offering_[e]) {
    const double d = (*dist_)(p, f.point);
    if (d < best) {
      best = d;
      best_id = f.id;
    }
  }
  return {best, best_id};
}

void NearestOrOpen::serve(const Request& request, SolutionLedger& ledger) {
  OMFLP_CHECK(cost_ != nullptr, "NearestOrOpen: serve() before reset()");
  request.commodities.for_each([&](CommodityId e) {
    const auto [d, id] = nearest_offering(e, request.location);
    const double open_here = cost_->singleton_cost(request.location, e);
    if (d <= open_here) {
      ledger.assign(e, id);
    } else {
      const FacilityId nid = ledger.open_facility(
          request.location, CommoditySet::singleton(num_commodities_, e));
      offering_[e].push_back(OpenRecord{request.location, nid});
      emit_greedy_open(ledger, nid, e, 0.0, open_here);
      ledger.assign(e, nid);
    }
  });
}

void RentOrBuy::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "RentOrBuy::reset: incomplete context");
  cost_ = context.cost;
  dist_ = std::make_unique<DistanceOracle>(context.metric);
  num_commodities_ = context.num_commodities();
  offering_.assign(num_commodities_, {});
  rent_account_.assign(num_commodities_, 0.0);
}

std::pair<double, FacilityId> RentOrBuy::nearest_offering(CommodityId e,
                                                          PointId p) const {
  OMFLP_PERF_ADD(facilities_probed, offering_[e].size());
  double best = kInfiniteDistance;
  FacilityId best_id = kInvalidFacility;
  for (const OpenRecord& f : offering_[e]) {
    const double d = (*dist_)(p, f.point);
    if (d < best) {
      best = d;
      best_id = f.id;
    }
  }
  return {best, best_id};
}

void RentOrBuy::serve(const Request& request, SolutionLedger& ledger) {
  OMFLP_CHECK(cost_ != nullptr, "RentOrBuy: serve() before reset()");
  request.commodities.for_each([&](CommodityId e) {
    const auto [d, id] = nearest_offering(e, request.location);
    const double open_here = cost_->singleton_cost(request.location, e);
    // Classic ski rental: keep renting (connecting) while the accumulated
    // rent including this connection stays below the local opening cost;
    // buy (open here) once it would exceed it.
    if (id != kInvalidFacility && rent_account_[e] + d <= open_here) {
      rent_account_[e] += d;
      ledger.assign(e, id);
    } else {
      const double rent_spent = rent_account_[e];
      rent_account_[e] = 0.0;
      const FacilityId nid = ledger.open_facility(
          request.location, CommoditySet::singleton(num_commodities_, e));
      offering_[e].push_back(OpenRecord{request.location, nid});
      emit_greedy_open(ledger, nid, e, rent_spent, open_here);
      ledger.assign(e, nid);
    }
  });
}

namespace {

/// Shared shape of the greedy baselines' facility index: one line per
/// commodity with its (point, facility id) records.
template <typename OpenRecordT>
void serialize_offering(
    CkptWriter& writer,
    const std::vector<std::vector<OpenRecordT>>& offering) {
  writer.line("offering-index").u(offering.size());
  for (const auto& row : offering) {
    writer.line("offering").u(row.size());
    for (const auto& f : row) writer.u(f.point).u(f.id);
  }
}

template <typename OpenRecordT>
void restore_offering(CkptReader& reader,
                      std::vector<std::vector<OpenRecordT>>& offering) {
  reader.expect("offering-index");
  if (reader.u() != offering.size())
    reader.fail("offering index universe mismatch");
  for (auto& row : offering) {
    reader.expect("offering");
    const std::uint64_t n = reader.u();
    row.reserve(capped_reserve(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      OpenRecordT f;
      f.point = static_cast<PointId>(reader.u());
      f.id = static_cast<FacilityId>(reader.u());
      row.push_back(f);
    }
  }
}

}  // namespace

void NearestOrOpen::serialize_state(CkptWriter& writer) const {
  serialize_offering(writer, offering_);
}

void NearestOrOpen::restore_state(CkptReader& reader) {
  restore_offering(reader, offering_);
}

void RentOrBuy::serialize_state(CkptWriter& writer) const {
  serialize_offering(writer, offering_);
  writer.line("rent-accounts").u(rent_account_.size());
  for (const double v : rent_account_) writer.d(v);
}

void RentOrBuy::restore_state(CkptReader& reader) {
  restore_offering(reader, offering_);
  reader.expect("rent-accounts");
  if (reader.u() != rent_account_.size())
    reader.fail("rent account universe mismatch");
  for (double& v : rent_account_) v = reader.d();
}

}  // namespace omflp
