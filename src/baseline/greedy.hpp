// Greedy strawman baselines.
//
// These are not from the paper; they anchor the benchmark tables from
// below (what "no cleverness" costs) and exercise the ledger from simple
// code paths in tests.
//
//   AlwaysOpen       — open a facility with exactly s_r at the request's
//                      location, every time. Zero connection cost,
//                      unbounded opening cost (Ω(n)-competitive on
//                      repeated identical requests).
//   NearestOrOpen    — per commodity: connect to the nearest facility
//                      offering e if that is cheaper than opening {e} at
//                      the request's location, otherwise open. The classic
//                      "greedy without amortization"; loses on zooming
//                      sequences.
//   RentOrBuy        — NearestOrOpen plus a ski-rental account per
//                      commodity: accumulated connection spending since
//                      the last opening must exceed the local opening cost
//                      before a new facility may open. A folklore
//                      doubling heuristic; included as an ablation of
//                      PD-OMFLP's amortized bidding.
//
// Deletion policy on dynamic streams: all three are frozen (the
// inherited no-op depart). Their state is the opened facilities plus, for
// RentOrBuy, the ski-rental accounts; a departure leaves facilities in
// place by irrevocability, and rent already paid is sunk by the ski-rental
// argument, so ledger-level active-interval re-accounting is the whole
// policy.
#pragma once

#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "metric/distance_oracle.hpp"

namespace omflp {

class AlwaysOpen final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "AlwaysOpen"; }
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;

 private:
  CommodityId num_commodities_ = 0;
};

class NearestOrOpen final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "NearestOrOpen"; }
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  /// Checkpoint: the opened-facility index (the algorithm's only state).
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

 protected:
  CostModelPtr cost_;
  std::unique_ptr<DistanceOracle> dist_;
  CommodityId num_commodities_ = 0;
  struct OpenRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
  };
  std::vector<std::vector<OpenRecord>> offering_;

  std::pair<double, FacilityId> nearest_offering(CommodityId e,
                                                 PointId p) const;
};

class RentOrBuy final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "RentOrBuy"; }
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  /// Checkpoint: the opened-facility index plus the ski-rental accounts.
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

 private:
  CostModelPtr cost_;
  std::unique_ptr<DistanceOracle> dist_;
  CommodityId num_commodities_ = 0;
  struct OpenRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
  };
  std::vector<std::vector<OpenRecord>> offering_;
  std::vector<double> rent_account_;  // per commodity

  std::pair<double, FacilityId> nearest_offering(CommodityId e,
                                                 PointId p) const;
};

}  // namespace omflp
