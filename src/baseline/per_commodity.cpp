#include "baseline/per_commodity.hpp"

#include <optional>
#include <sstream>

#include "baseline/fotakis_ofl.hpp"
#include "baseline/meyerson_ofl.hpp"
#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

/// Re-emit events a sub-algorithm produced against its private
/// sub-ledger, translated into real-ledger ids. request_assign events are
/// dropped: the adapter's own ledger.assign() re-emits them with real ids.
/// (Templated on the adapter's private SubInstance type.)
template <typename SubInstance>
void replay_sub_trace(const TraceBuffer& sub_trace, const SubInstance& sub,
                      CommodityId e) {
  for (TraceEvent ev : sub_trace.events()) {
    if (ev.kind == TraceEventKind::kRequestAssign) continue;
    ev.commodity = e;
    if (ev.facility != kInvalidFacility) {
      OMFLP_CHECK(ev.facility < sub.facility_map.size(),
                  "PerCommodityAdapter: trace names an unmirrored facility");
      ev.facility = sub.facility_map[ev.facility];
    }
    if (ev.request != kInvalidRequest) {
      OMFLP_CHECK(ev.request < sub.real_request.size(),
                  "PerCommodityAdapter: trace names an unknown sub-request");
      ev.request = sub.real_request[ev.request];
    }
    for (TraceContributor& c : ev.contributors) {
      OMFLP_CHECK(c.request < sub.real_request.size(),
                  "PerCommodityAdapter: contributor is an unknown "
                  "sub-request");
      c.request = sub.real_request[c.request];
    }
    obs::emit(ev);
  }
}

}  // namespace

RestrictedCostModel::RestrictedCostModel(CostModelPtr base,
                                         CommodityId commodity)
    : base_(std::move(base)), commodity_(commodity) {
  OMFLP_REQUIRE(base_ != nullptr, "RestrictedCostModel: null base");
  OMFLP_REQUIRE(commodity_ < base_->num_commodities(),
                "RestrictedCostModel: commodity out of range");
}

double RestrictedCostModel::open_cost(PointId m,
                                      const CommoditySet& config) const {
  const CommodityId size = check_config(config);
  if (size == 0) return 0.0;
  return base_->open_cost(
      m, CommoditySet::singleton(base_->num_commodities(), commodity_));
}

std::string RestrictedCostModel::description() const {
  std::ostringstream os;
  os << "restrict(" << base_->description() << ", e=" << commodity_ << ")";
  return os.str();
}

PerCommodityAdapter::PerCommodityAdapter(Factory factory, std::string label)
    : factory_(std::move(factory)), label_(std::move(label)) {
  OMFLP_REQUIRE(factory_ != nullptr, "PerCommodityAdapter: null factory");
}

std::unique_ptr<PerCommodityAdapter> PerCommodityAdapter::fotakis() {
  return std::make_unique<PerCommodityAdapter>(
      [](CommodityId) { return std::make_unique<FotakisOfl>(); },
      "PerCommodity[Fotakis]");
}

std::unique_ptr<PerCommodityAdapter> PerCommodityAdapter::meyerson(
    std::uint64_t seed) {
  return std::make_unique<PerCommodityAdapter>(
      [seed](CommodityId e) {
        return std::make_unique<MeyersonOfl>(seed ^ (0x9e3779b97f4a7c15ULL *
                                                     (e + 1)));
      },
      "PerCommodity[Meyerson]");
}

void PerCommodityAdapter::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "PerCommodityAdapter::reset: incomplete context");
  context_ = context;
  subs_.clear();
  subs_.resize(context.num_commodities());
  sub_ids_.clear();
}

PerCommodityAdapter::SubInstance& PerCommodityAdapter::sub_for(CommodityId e) {
  SubInstance& sub = subs_[e];
  if (!sub.initialized) {
    auto restricted =
        std::make_shared<RestrictedCostModel>(context_.cost, e);
    sub.algorithm = factory_(e);
    OMFLP_CHECK(sub.algorithm != nullptr,
                "PerCommodityAdapter: factory returned null");
    sub.algorithm->reset(ProblemContext{context_.metric, restricted});
    sub.ledger = std::make_unique<SolutionLedger>(context_.metric, restricted);
    sub.initialized = true;
  }
  return sub;
}

void PerCommodityAdapter::serve(const Request& request,
                                SolutionLedger& ledger) {
  const CommodityId s = context_.num_commodities();
  OMFLP_CHECK(ledger.num_requests() == sub_ids_.size() + 1,
              "PerCommodityAdapter: serve out of step with the ledger");
  sub_ids_.emplace_back();
  request.commodities.for_each([&](CommodityId e) {
    SubInstance& sub = sub_for(e);
    sub_ids_.back().emplace_back(e, sub.ledger->num_requests());
    sub.real_request.push_back(ledger.num_requests() - 1);

    Request sub_request;
    sub_request.location = request.location;
    sub_request.commodities = CommoditySet::full_set(1);
    // Sub-algorithms emit trace events in their own sub-ledger id space;
    // capture them in a buffer and replay with translated ids below.
    TraceBuffer sub_trace;
    {
      std::optional<TraceScope> capture;
      if (obs::tracing()) capture.emplace(sub_trace);
      sub.ledger->begin_request(sub_request);
      sub.algorithm->serve(sub_request, *sub.ledger);
      sub.ledger->finish_request();
    }

    // Mirror any newly opened sub-facilities into the real ledger as
    // singleton-{e} facilities.
    while (sub.facility_map.size() < sub.ledger->num_facilities()) {
      const OpenFacilityRecord& f =
          sub.ledger->facility(sub.facility_map.size());
      sub.facility_map.push_back(
          ledger.open_facility(f.location, CommoditySet::singleton(s, e)));
    }
    replay_sub_trace(sub_trace, sub, e);

    // Mirror the assignment of the sub-request just served.
    const RequestRecord& rec = sub.ledger->request_records().back();
    OMFLP_CHECK(rec.served.size() == 1,
                "PerCommodityAdapter: sub-algorithm must serve exactly one "
                "commodity");
    ledger.assign(e, sub.facility_map[rec.served.front().facility]);
  });
}

void PerCommodityAdapter::depart(RequestId id, const Request& request,
                                 SolutionLedger& ledger) {
  (void)ledger;
  OMFLP_REQUIRE(id < sub_ids_.size(),
                "PerCommodityAdapter: depart of unknown request");
  Request sub_request;
  sub_request.location = request.location;
  sub_request.commodities = CommoditySet::full_set(1);
  for (const auto& [e, sub_id] : sub_ids_[id]) {
    SubInstance& sub = sub_for(e);
    TraceBuffer sub_trace;
    {
      std::optional<TraceScope> capture;
      if (obs::tracing()) capture.emplace(sub_trace);
      sub.algorithm->depart(sub_id, sub_request, *sub.ledger);
    }
    replay_sub_trace(sub_trace, sub, e);
  }
}

void PerCommodityAdapter::serialize_state(CkptWriter& writer) const {
  writer.line("subs").u(subs_.size());
  for (std::size_t e = 0; e < subs_.size(); ++e) {
    const SubInstance& sub = subs_[e];
    writer.line("sub").u(e).b(sub.initialized);
    if (!sub.initialized) continue;
    sub.algorithm->serialize_state(writer);
    sub.ledger->serialize(writer);
    writer.line("facility-map").u(sub.facility_map.size());
    for (const FacilityId f : sub.facility_map) writer.u(f);
    writer.line("real-requests").u(sub.real_request.size());
    for (const RequestId r : sub.real_request) writer.u(r);
  }
  writer.line("sub-ids").u(sub_ids_.size());
  for (const auto& entries : sub_ids_) {
    writer.line("sub-id").u(entries.size());
    for (const auto& [commodity, sub_request] : entries)
      writer.u(commodity).u(sub_request);
  }
}

void PerCommodityAdapter::restore_state(CkptReader& reader) {
  reader.expect("subs");
  if (reader.u() != subs_.size())
    reader.fail("sub-instance count differs from the commodity universe");
  for (std::size_t e = 0; e < subs_.size(); ++e) {
    reader.expect("sub");
    if (reader.u() != e) reader.fail("sub-instances out of order");
    if (!reader.b()) continue;
    // Re-initialize through the factory (same derived seed), then hand
    // the sub-algorithm and sub-ledger their serialized state.
    SubInstance& sub = sub_for(static_cast<CommodityId>(e));
    sub.algorithm->restore_state(reader);
    sub.ledger->restore(reader);
    reader.expect("facility-map");
    const std::uint64_t num_mapped = reader.u();
    if (num_mapped != sub.ledger->num_facilities())
      reader.fail("facility map out of step with the sub-ledger");
    sub.facility_map.reserve(capped_reserve(num_mapped));
    for (std::uint64_t i = 0; i < num_mapped; ++i)
      sub.facility_map.push_back(static_cast<FacilityId>(reader.u()));
    reader.expect("real-requests");
    const std::uint64_t num_requests = reader.u();
    sub.real_request.reserve(capped_reserve(num_requests));
    for (std::uint64_t i = 0; i < num_requests; ++i)
      sub.real_request.push_back(static_cast<RequestId>(reader.u()));
  }
  reader.expect("sub-ids");
  const std::uint64_t num_sub_ids = reader.u();
  sub_ids_.reserve(capped_reserve(num_sub_ids));
  for (std::uint64_t i = 0; i < num_sub_ids; ++i) {
    reader.expect("sub-id");
    const std::uint64_t n = reader.u();
    std::vector<std::pair<CommodityId, RequestId>> entries;
    entries.reserve(capped_reserve(n));
    for (std::uint64_t k = 0; k < n; ++k) {
      const auto commodity = static_cast<CommodityId>(reader.u());
      if (commodity >= subs_.size()) reader.fail("sub-id commodity range");
      entries.emplace_back(commodity, static_cast<RequestId>(reader.u()));
    }
    sub_ids_.push_back(std::move(entries));
  }
}

}  // namespace omflp
