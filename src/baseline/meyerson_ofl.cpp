#include "baseline/meyerson_ofl.hpp"

#include <algorithm>
#include <cmath>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

/// facility_open for Meyerson coins: tightness carries the coin
/// probability (1.0 on the completion path), like RAND-OMFLP.
void emit_meyerson_open(const SolutionLedger& ledger, FacilityId id,
                        double coin_p) {
  if (!obs::tracing()) return;
  const OpenFacilityRecord& record = ledger.facility(id);
  TraceEvent ev;
  ev.kind = TraceEventKind::kFacilityOpen;
  ev.request = ledger.num_requests() - 1;
  ev.commodity = 0;
  ev.facility = id;
  ev.point = record.location;
  ev.config_size = record.config.count();
  ev.cost = record.open_cost;
  ev.tightness = coin_p;
  obs::emit(ev);
}

}  // namespace

void MeyersonOfl::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "MeyersonOfl::reset: incomplete context");
  OMFLP_REQUIRE(context.num_commodities() == 1,
                "MeyersonOfl: single-commodity algorithm; wrap in "
                "PerCommodityAdapter for |S| > 1");
  cost_ = context.cost;
  dist_ = std::make_shared<DistanceOracle>(context.metric);
  classes_ = std::make_unique<CostClassIndex>(context.metric, context.cost,
                                              CommoditySet::full_set(1),
                                              dist_);
  facilities_.clear();
  rng_ = Rng(seed_);
}

void MeyersonOfl::serve(const Request& request, SolutionLedger& ledger) {
  OMFLP_CHECK(cost_ != nullptr, "MeyersonOfl: serve() before reset()");
  const PointId loc = request.location;

  OMFLP_PERF_ADD(facilities_probed, facilities_.size());
  double connect = kInfiniteDistance;
  if (!facilities_.empty()) {
    OMFLP_PERF_ADD(distance_lookups, facilities_.size());
    const double* dist_loc = dist_->row(loc);
    for (const OpenRecord& f : facilities_)
      connect = std::min(connect, dist_loc[f.point]);
  }
  const auto open = classes_->best_open_option(loc);
  const double budget = std::min(connect, open.cost);
  OMFLP_CHECK(std::isfinite(budget), "MeyersonOfl: unserviceable request");

  // One coin per cost class, improvements capped at the budget (same
  // reading as RAND-OMFLP; see core/rand_omflp.hpp).
  double d_prev = budget;
  for (std::size_t i = 0; i < classes_->num_classes(); ++i) {
    const auto [site_dist, site] = classes_->prefix_nearest(i, loc);
    const double d_i = std::min(budget, site_dist);
    const double improvement = std::max(0.0, d_prev - d_i);
    d_prev = d_i;
    if (improvement <= 0.0) continue;
    const double c_i = classes_->class_cost(i);
    const double p = c_i > 0.0 ? std::min(1.0, improvement / c_i) : 1.0;
    OMFLP_PERF_COUNT(coin_flips);
    if (p > 0.0 && rng_.bernoulli(p)) {
      const FacilityId id =
          ledger.open_facility(site, CommoditySet::full_set(1));
      facilities_.push_back(OpenRecord{site, id});
      emit_meyerson_open(ledger, id, p);
    }
  }

  // Completion: the request must be serviceable.
  if (facilities_.empty()) {
    const FacilityId id =
        ledger.open_facility(open.point, CommoditySet::full_set(1));
    facilities_.push_back(OpenRecord{open.point, id});
    emit_meyerson_open(ledger, id, /*coin_p=*/1.0);
  }

  FacilityId best_id = kInvalidFacility;
  double best_d = kInfiniteDistance;
  OMFLP_PERF_ADD(facilities_probed, facilities_.size());
  OMFLP_PERF_ADD(distance_lookups, facilities_.size());
  const double* dist_loc = dist_->row(loc);
  for (const OpenRecord& f : facilities_) {
    const double d = dist_loc[f.point];
    if (d < best_d) {
      best_d = d;
      best_id = f.id;
    }
  }
  ledger.assign(0, best_id);
}

void MeyersonOfl::serialize_state(CkptWriter& writer) const {
  serialize_rng(writer, rng_);
  writer.line("facilities").u(facilities_.size());
  for (const OpenRecord& f : facilities_) writer.u(f.point).u(f.id);
}

void MeyersonOfl::restore_state(CkptReader& reader) {
  restore_rng(reader, rng_);
  reader.expect("facilities");
  const std::uint64_t n = reader.u();
  facilities_.reserve(capped_reserve(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    OpenRecord f;
    f.point = static_cast<PointId>(reader.u());
    f.id = static_cast<FacilityId>(reader.u());
    facilities_.push_back(f);
  }
}

}  // namespace omflp
