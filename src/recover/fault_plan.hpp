// Deterministic fault injection for the sharded serving engine.
//
// A FaultPlan is parsed from a compact spec string
// (`crashes=2,seed=7,gap=8,torn=1,bitflip=1`) and pre-computes an
// absolute crash schedule: crash round k is the cumulative sum of k+1
// seeded uniform draws from [1, gap]. The engine consults the plan after
// each round's checkpoint publication; on a scheduled round it throws
// EngineCrash — after optionally damaging the just-published generation
// (torn: truncate a tenant file before its checksum line; bitflip: flip
// one payload byte), which forces recovery to reject that generation and
// fall back to the previous one.
//
// Everything is a pure function of the spec, so a fault run is exactly
// reproducible: same spec + same workload -> same crashes, same
// corruption, same recovery path. That is what lets the harness assert
// *bitwise* identity between a crashed-and-recovered run and an
// uninterrupted one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace omflp {

class CheckpointStore;

/// Thrown by the engine at an injected crash point. Carries the round so
/// the driver can log the restart boundary.
struct EngineCrash : std::runtime_error {
  explicit EngineCrash(std::uint64_t crash_round)
      : std::runtime_error("injected crash after round " +
                           std::to_string(crash_round)),
        round(crash_round) {}
  std::uint64_t round;
};

class FaultPlan {
 public:
  /// Parse `crashes=N,seed=S,gap=G,torn=0|1,bitflip=0|1` (keys optional,
  /// any order; defaults crashes=1, seed=1, gap=8, torn=0, bitflip=0).
  /// Throws std::invalid_argument on unknown keys, malformed values,
  /// or gap=0.
  static FaultPlan parse(const std::string& spec);

  /// Absolute engine rounds at which crashes fire, ascending.
  const std::vector<std::uint64_t>& crash_rounds() const noexcept {
    return crash_rounds_;
  }
  bool torn() const noexcept { return torn_; }
  bool bitflip() const noexcept { return bitflip_; }

  /// True when a not-yet-consumed crash is scheduled at or before
  /// `round`; consumes it. ("At or before" so a restart that resumes
  /// past a scheduled round cannot stall the schedule.)
  bool should_crash(std::uint64_t round);

  std::size_t crashes_fired() const noexcept { return next_; }
  std::size_t crashes_remaining() const noexcept {
    return crash_rounds_.size() - next_;
  }

  /// Damage the newest published generation per the torn/bitflip flags:
  /// torn truncates tenant file 0 just before its checksum line;
  /// bitflip flips one byte mid-payload of the last tenant file. No-op
  /// when both flags are off or the store has no valid generation.
  void corrupt_latest(CheckpointStore& store) const;

 private:
  FaultPlan() = default;

  std::vector<std::uint64_t> crash_rounds_;
  bool torn_ = false;
  bool bitflip_ = false;
  std::size_t next_ = 0;
};

}  // namespace omflp
