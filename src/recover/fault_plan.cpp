#include "recover/fault_plan.hpp"

#include <fstream>
#include <sstream>

#include "recover/checkpoint_store.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"

namespace omflp {

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("--fault-plan: " + what);
}

std::uint64_t spec_u64(const std::string& key, const std::string& value) {
  const auto parsed = parse_u64_strict(value);
  if (!parsed) bad_spec("malformed value for " + key + ": '" + value + "'");
  return *parsed;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file_raw(const std::string& path, const std::string& content) {
  // Deliberately NOT atomic: fault injection simulates the damage a real
  // crash leaves behind, so it writes in place.
  // omflp-lint: allow(raw-artifact-write) fault injection simulates torn writes
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::uint64_t crashes = 1;
  std::uint64_t seed = 1;
  std::uint64_t gap = 8;
  FaultPlan plan;

  std::istringstream fields(spec);
  std::string field;
  while (std::getline(fields, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos)
      bad_spec("expected key=value, got '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "crashes") {
      crashes = spec_u64(key, value);
    } else if (key == "seed") {
      seed = spec_u64(key, value);
    } else if (key == "gap") {
      gap = spec_u64(key, value);
    } else if (key == "torn") {
      plan.torn_ = spec_u64(key, value) != 0;
    } else if (key == "bitflip") {
      plan.bitflip_ = spec_u64(key, value) != 0;
    } else {
      bad_spec("unknown key '" + key + "'");
    }
  }
  if (gap == 0) bad_spec("gap must be positive");

  Rng rng(seed);
  std::uint64_t round = 0;
  plan.crash_rounds_.reserve(crashes);
  for (std::uint64_t k = 0; k < crashes; ++k) {
    round += static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(gap)));
    plan.crash_rounds_.push_back(round);
  }
  return plan;
}

bool FaultPlan::should_crash(std::uint64_t round) {
  if (next_ >= crash_rounds_.size()) return false;
  if (crash_rounds_[next_] > round) return false;
  ++next_;
  return true;
}

void FaultPlan::corrupt_latest(CheckpointStore& store) const {
  if (!torn_ && !bitflip_) return;
  const auto manifest = store.latest_valid();
  if (!manifest || manifest->tenants.empty()) return;

  if (torn_) {
    // Truncate to half the payload: the checksum line is gone, so the
    // structural validator must classify the file as torn.
    const std::string path = store.tenant_path(0, manifest->generation);
    const std::string content = read_file(path);
    write_file_raw(path, content.substr(0, content.size() / 2));
  }
  if (bitflip_) {
    const std::string path = store.tenant_path(
        manifest->tenants.size() - 1, manifest->generation);
    std::string content = read_file(path);
    if (!content.empty()) {
      content[content.size() / 2] =
          static_cast<char>(content[content.size() / 2] ^ 0x01);
      write_file_raw(path, content);
    }
  }
}

}  // namespace omflp
