// CheckpointStore — generation-numbered checkpoint sets on disk, with
// atomic publication and validated recovery.
//
// A *generation* is one consistent snapshot of every tenant in a
// ShardedEngine run: one OMFLP-CKPT file per tenant
// (`t<i>.g<N>.ckpt`, index-based so arbitrary tenant names never meet
// the filesystem) plus a manifest (`MANIFEST.g<N>.ckpt`, same format)
// pinning the round, the trace sequence number and the tenant list.
//
// Publication order is the crash-safety argument: every tenant file is
// written atomically (tmp + rename, support/atomic_file.hpp) *before*
// the manifest, and the manifest write is itself atomic — so the
// manifest is the commit point. A crash mid-publication leaves either
// no manifest for the new generation (the previous generation stays
// authoritative) or a complete, valid set. Torn tenant files without a
// checksum line, or corrupted ones failing it, are caught by
// latest_valid()'s independent scan and the whole generation is
// rejected in favour of the previous one.
//
// Two generations are kept (the freshly published one and its
// predecessor); older sets are pruned after each successful publish.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace omflp {

struct CheckpointManifest {
  std::uint64_t generation = 0;
  /// Engine round the snapshot was taken after.
  std::uint64_t round = 0;
  /// Trace events emitted to the sink before the snapshot — the replay
  /// boundary a resumed run's tracelog is truncated to.
  std::uint64_t trace_seq = 0;
  /// Tenant names in spec order (a guard: a checkpoint set only
  /// restores into the same tenant roster).
  std::vector<std::string> tenants;
};

class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const noexcept { return dir_; }
  std::string tenant_path(std::size_t tenant_index,
                          std::uint64_t generation) const;
  std::string manifest_path(std::uint64_t generation) const;

  /// Publishes one generation: every tenant payload (a complete
  /// OMFLP-CKPT text) atomically, manifest last, then prunes
  /// generations older than the previous one. Throws
  /// std::runtime_error on IO failure.
  void publish(const CheckpointManifest& manifest,
               const std::vector<std::string>& tenant_payloads);

  /// The newest generation whose manifest parses *and* whose every
  /// tenant file passes the independent OMFLP-CKPT structural check —
  /// torn or corrupted generations are skipped in favour of older
  /// valid ones. nullopt when no valid generation exists (fresh
  /// start). Never throws.
  std::optional<CheckpointManifest> latest_valid() const;

  /// Removes every generation except the `keep` newest among
  /// `generations` (ascending). Missing files are ignored.
  void prune(const std::vector<std::uint64_t>& generations,
             std::size_t keep = 2);

  /// All generations with a manifest file present, ascending.
  std::vector<std::uint64_t> list_generations() const;

 private:
  std::string dir_;
};

}  // namespace omflp
