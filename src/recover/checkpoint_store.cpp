#include "recover/checkpoint_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "instance/checkpoint_io.hpp"
#include "support/assert.hpp"
#include "support/atomic_file.hpp"
#include "support/parse.hpp"

namespace fs = std::filesystem;

namespace omflp {

namespace {

constexpr const char* kManifestStem = "MANIFEST.g";

std::string generation_suffix(std::uint64_t generation) {
  // Built by append, not operator+ chains: GCC 12's -Wrestrict trips a
  // false positive on char*-plus-temporary-string concatenation.
  std::string suffix = "g";
  suffix += std::to_string(generation);
  suffix += ".ckpt";
  return suffix;
}

/// Serializes a manifest in the same OMFLP-CKPT container as the tenant
/// snapshots, so the one validator covers every file in the directory.
std::string manifest_payload(const CheckpointManifest& manifest) {
  std::ostringstream os;
  CkptWriter writer(os);
  writer.line("manifest")
      .u(manifest.generation)
      .u(manifest.round)
      .u(manifest.trace_seq)
      .u(manifest.tenants.size());
  for (const std::string& name : manifest.tenants)
    writer.line("tenant").bytes(name);
  writer.finish();
  return os.str();
}

std::optional<CheckpointManifest> parse_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    CkptReader reader(in);
    CheckpointManifest manifest;
    reader.expect("manifest");
    manifest.generation = reader.u();
    manifest.round = reader.u();
    manifest.trace_seq = reader.u();
    const std::uint64_t num_tenants = reader.u();
    manifest.tenants.reserve(capped_reserve(num_tenants));
    for (std::uint64_t i = 0; i < num_tenants; ++i) {
      reader.expect("tenant");
      manifest.tenants.push_back(reader.bytes());
    }
    reader.finish();
    return manifest;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool file_payload_valid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  return checkpoint_payload_valid(in);
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  OMFLP_REQUIRE(!dir_.empty(), "CheckpointStore: empty directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw std::runtime_error("CheckpointStore: cannot create " + dir_ +
                             ": " + ec.message());
}

std::string CheckpointStore::tenant_path(std::size_t tenant_index,
                                         std::uint64_t generation) const {
  std::string name = "t";
  name += std::to_string(tenant_index);
  name += '.';
  name += generation_suffix(generation);
  return (fs::path(dir_) / name).string();
}

std::string CheckpointStore::manifest_path(std::uint64_t generation) const {
  return (fs::path(dir_) /
          (kManifestStem + std::to_string(generation) + ".ckpt"))
      .string();
}

void CheckpointStore::publish(const CheckpointManifest& manifest,
                              const std::vector<std::string>& tenant_payloads) {
  OMFLP_REQUIRE(manifest.tenants.size() == tenant_payloads.size(),
                "CheckpointStore: tenant name / payload count mismatch");
  const std::vector<std::uint64_t> before = list_generations();
  // Tenant files first, manifest last: the manifest is the commit point,
  // so a crash anywhere in this loop leaves the previous generation
  // authoritative.
  for (std::size_t i = 0; i < tenant_payloads.size(); ++i)
    write_file_atomic(tenant_path(i, manifest.generation),
                      tenant_payloads[i]);
  write_file_atomic(manifest_path(manifest.generation),
                    manifest_payload(manifest));

  std::vector<std::uint64_t> all = before;
  if (std::find(all.begin(), all.end(), manifest.generation) == all.end())
    all.push_back(manifest.generation);
  std::sort(all.begin(), all.end());
  prune(all);
}

std::optional<CheckpointManifest> CheckpointStore::latest_valid() const {
  std::vector<std::uint64_t> generations;
  try {
    generations = list_generations();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    std::optional<CheckpointManifest> manifest =
        parse_manifest(manifest_path(*it));
    if (!manifest || manifest->generation != *it) continue;
    bool all_valid = true;
    for (std::size_t i = 0; i < manifest->tenants.size(); ++i) {
      if (!file_payload_valid(tenant_path(i, *it))) {
        all_valid = false;
        break;
      }
    }
    if (all_valid) return manifest;
  }
  return std::nullopt;
}

void CheckpointStore::prune(const std::vector<std::uint64_t>& generations,
                            std::size_t keep) {
  if (generations.size() <= keep) return;
  std::error_code ec;
  for (std::size_t k = 0; k + keep < generations.size(); ++k) {
    const std::uint64_t g = generations[k];
    // Manifest first: once it is gone the generation can never be
    // selected, so a crash mid-prune leaves stray-but-ignored tenant
    // files, not a half-valid generation.
    fs::remove(manifest_path(g), ec);
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      std::string suffix = ".";
      suffix += generation_suffix(g);
      if (name.size() > suffix.size() && name.front() == 't' &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0)
        fs::remove(entry.path(), ec);
    }
  }
}

std::vector<std::uint64_t> CheckpointStore::list_generations() const {
  std::vector<std::uint64_t> generations;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view stem = "MANIFEST.g";
    constexpr std::string_view ext = ".ckpt";
    if (name.size() <= stem.size() + ext.size()) continue;
    if (name.compare(0, stem.size(), stem) != 0) continue;
    if (name.compare(name.size() - ext.size(), ext.size(), ext) != 0)
      continue;
    const std::string digits =
        name.substr(stem.size(), name.size() - stem.size() - ext.size());
    if (const auto g = parse_u64_strict(digits)) generations.push_back(*g);
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

}  // namespace omflp
