#include "support/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace omflp {

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Rng Rng::substream(std::uint64_t index) const noexcept {
  // Mix the substream index through SplitMix64 against a snapshot of our
  // own stream position so substreams of distinct parents differ too.
  Rng copy = *this;
  std::uint64_t base = copy.next_u64();
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  Rng child(sm.next());
  return child;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  OMFLP_REQUIRE(n > 0, "uniform_index: n must be positive");
  // Lemire-style rejection: accept unless we fall into the biased tail.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = gen_();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double lambda) {
  OMFLP_REQUIRE(lambda > 0.0, "exponential: rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler(*this);
}

std::vector<std::size_t> Rng::sample_without_replacement(
    std::size_t n, std::size_t k) {
  OMFLP_REQUIRE(k <= n, "sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  OMFLP_REQUIRE(n > 0, "ZipfSampler: n must be positive");
  OMFLP_REQUIRE(exponent >= 0.0, "ZipfSampler: exponent must be >= 0");
  cumulative_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cumulative_[i] = acc;
  }
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double target = rng.uniform() * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) --it;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace omflp
