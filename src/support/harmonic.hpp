// Harmonic numbers H_n = sum_{k=1..n} 1/k.
//
// The paper's dual scaling factor is γ = 1/(5·√|S|·H_n) and the c-ordered
// covering guarantee is 2cH_n; both the algorithms' analysis checkers and
// the bound curves need H_n. Exact summation for small n, asymptotic
// expansion beyond (error < 1e-12 for n >= 64).
#pragma once

#include <cmath>
#include <cstddef>

namespace omflp {

inline double harmonic(std::size_t n) {
  if (n == 0) return 0.0;
  if (n <= 1024) {
    double h = 0.0;
    for (std::size_t k = 1; k <= n; ++k) h += 1.0 / static_cast<double>(k);
    return h;
  }
  constexpr double kEulerMascheroni = 0.577215664901532860606512;
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerMascheroni + 1.0 / (2.0 * x) -
         1.0 / (12.0 * x * x) + 1.0 / (120.0 * x * x * x * x);
}

/// The paper's dual scaling factor γ = 1/(5·sqrt(S)·H_n)  (Section 3.2).
inline double pd_scaling_factor(std::size_t num_commodities, std::size_t n) {
  const double s = static_cast<double>(num_commodities);
  return 1.0 / (5.0 * std::sqrt(s) * harmonic(n));
}

}  // namespace omflp
