// TableWriter — uniform tabular output for every bench binary.
//
// Benches print the series the paper's figures/tables would contain; this
// writer renders them as GitHub-flavoured markdown (human inspection) or
// CSV (downstream plotting) with consistent numeric formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace omflp {

class TableWriter {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit TableWriter(std::vector<std::string> columns);

  /// Start a new row; subsequent add() calls fill it left to right.
  TableWriter& begin_row();
  TableWriter& add(std::string value);
  TableWriter& add(const char* value);
  TableWriter& add(double value);
  TableWriter& add(long long value);
  TableWriter& add(int value) { return add(static_cast<long long>(value)); }
  TableWriter& add(std::size_t value) {
    return add(static_cast<long long>(value));
  }

  /// Number of significant digits for doubles (default 4).
  void set_precision(int digits);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  void write_markdown(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  std::string to_markdown() const;
  std::string to_csv() const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace omflp
