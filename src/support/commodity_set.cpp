#include "support/commodity_set.hpp"

#include <sstream>

namespace omflp {

std::string CommoditySet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first_item = true;
  for_each([&](CommodityId e) {
    if (!first_item) os << ',';
    os << e;
    first_item = false;
  });
  os << "}/" << universe_;
  return os.str();
}

}  // namespace omflp
