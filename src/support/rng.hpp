// Deterministic, fast random number generation.
//
// Experiments in this library must be exactly reproducible from a 64-bit
// seed, independent of the standard library implementation. We therefore
// ship our own generators (SplitMix64 for seeding, xoshiro256** as the
// workhorse) and our own distributions (uniform, Bernoulli, exponential,
// normal, Zipf) instead of relying on <random>'s unspecified algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace omflp {

/// SplitMix64: tiny generator used to expand one 64-bit seed into the
/// xoshiro state. Passes BigCrush when used standalone.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Checkpoint/restore (src/instance/checkpoint_io.hpp): the full
  /// generator state, so a restored generator continues the exact draw
  /// sequence.
  std::uint64_t state() const noexcept { return state_; }
  void set_state(std::uint64_t state) noexcept { state_ = state; }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's pseudo-random generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance the stream by 2^128 steps; used to derive independent
  /// per-thread / per-trial substreams from one master seed.
  void jump() noexcept;

  /// Checkpoint/restore: the four state words, bitwise.
  const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// High-level random source with the distributions the library needs.
/// All methods are deterministic functions of the seed and call sequence.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept : gen_(seed) {}

  /// Derive an independent substream; substream(i) != substream(j) for
  /// i != j with overwhelming probability, and derivation does not disturb
  /// this generator's own stream.
  [[nodiscard]] Rng substream(std::uint64_t index) const noexcept;

  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased (rejection sampling). Throws on
  /// n == 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Throws on an empty range.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    OMFLP_REQUIRE(lo <= hi, "uniform_int: empty range");
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with rate lambda (mean 1/lambda). Throws on lambda <= 0.
  double exponential(double lambda);

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 is
  /// uniform). Sampled by inverse CDF over precomputable weights; for
  /// repeated sampling prefer ZipfSampler below.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) uniformly (Floyd's algorithm
  /// would need a set; we use partial Fisher–Yates over an index pool,
  /// O(n) memory, deterministic). Throws on k > n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Checkpoint/restore: the complete draw-sequence state — the xoshiro
  /// words plus the Marsaglia normal cache (normal() produces pairs; a
  /// restore that dropped the cached half would desynchronize every
  /// subsequent draw).
  struct State {
    std::array<std::uint64_t, 4> gen{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const noexcept {
    return State{gen_.state(), cached_normal_, has_cached_normal_};
  }
  void set_state(const State& state) noexcept {
    gen_.set_state(state.gen);
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  Xoshiro256 gen_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed Zipf sampler: O(log n) per draw via binary search on the
/// cumulative weight table.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace omflp
