// Streaming and batch statistics for the experiment harness.
//
// RunningStats is Welford's online algorithm (numerically stable mean and
// variance); Summary additionally keeps the samples for quantiles and
// bootstrap confidence intervals. Competitive-ratio experiments report
// mean ± 95% CI over seeds, so the CI machinery lives here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace omflp {

class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  /// Standard error of the mean.
  double sem() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& o) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary that retains samples.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    stats_.add(x);
  }

  std::size_t count() const noexcept { return stats_.count(); }
  double mean() const noexcept { return stats_.mean(); }
  double stddev() const noexcept { return stats_.stddev(); }
  double min() const noexcept { return stats_.min(); }
  double max() const noexcept { return stats_.max(); }

  /// q-quantile via linear interpolation on the sorted samples, q in [0,1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Normal-approximation 95% confidence half-width for the mean.
  double ci95_halfwidth() const noexcept;

  /// Percentile-bootstrap 95% CI for the mean (deterministic given seed).
  std::pair<double, double> bootstrap_ci95(std::size_t resamples = 1000,
                                           std::uint64_t seed = 42) const;

  std::span<const double> samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
  RunningStats stats_;
};

/// Ordinary least squares fit y = a + b*x; returns {a, b, r^2}.
/// Used to check growth trends (e.g. ratio vs log n should have positive
/// slope and good fit, ratio/sqrt(S) should have ~zero slope).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace omflp
