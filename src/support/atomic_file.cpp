#include "support/atomic_file.hpp"

#include <cstdio>
#include <stdexcept>

namespace omflp {

std::string atomic_temp_path(const std::string& path) {
  return path + ".tmp";
}

void write_file_atomic(const std::string& path, const std::string& content) {
  AtomicFileWriter writer(path);
  writer.stream() << content;
  writer.commit();
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(atomic_temp_path(path_)) {
  file_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!file_)
    throw std::runtime_error("atomic write: cannot open " + temp_path_ +
                             " for writing");
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    file_.close();
    std::remove(temp_path_.c_str());
  }
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  file_.flush();
  if (!file_) {
    file_.close();
    std::remove(temp_path_.c_str());
    throw std::runtime_error("atomic write: failed writing " + temp_path_);
  }
  file_.close();
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    throw std::runtime_error("atomic write: cannot rename " + temp_path_ +
                             " over " + path_);
  }
  committed_ = true;
}

}  // namespace omflp
