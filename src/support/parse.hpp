// Strict numeric parsing — the one implementation behind every
// command-line argument and environment variable the library reads.
//
// The std::strtoull/strtod conventions are a bug farm for user input:
// strtoull silently wraps negative text ("-5" becomes 2^64−5), both accept
// trailing garbage unless the caller checks the end pointer, and overflow
// is only reported through errno. The helpers here are strict instead:
// the whole string must parse, sign wrap and out-of-range magnitudes are
// rejected, and non-finite doubles never come back.
//
// Two layers:
//   * parse_u64_strict / parse_double_strict — pure, allocation-light,
//     return std::nullopt on any violation (the testable core);
//   * parse_u64_arg / parse_double_arg — CLI wrappers that throw
//     std::invalid_argument with a "--flag: ..." message;
//   * env_u64 — environment wrapper that warns on stderr and falls back
//     (a malformed environment variable must never crash startup).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace omflp {

/// Bounded first reservation for a count declared by untrusted input
/// (trace headers, checkpoint manifests, CLI-supplied files): trust the
/// declared count only up to `cap`; growth beyond the cap is paid for by
/// input actually present. Every parse-path `.reserve()` must route its
/// declared count through this helper — a tampered "count 10^18" costs
/// its text length, never an allocation (enforced by omflp-lint's
/// raw-reserve rule; two real heap overflows rode in on trusted counts,
/// see tests/test_fuzz_parsers.cpp).
inline std::size_t capped_reserve(std::uint64_t declared,
                                  std::size_t cap = 4096) noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(declared, static_cast<std::uint64_t>(cap)));
}

/// Non-negative integer: an optional leading '+', then decimal digits
/// only. Rejects empty text, any other character (including leading
/// whitespace, '-', and trailing garbage like "123abc"), and values that
/// overflow std::uint64_t.
std::optional<std::uint64_t> parse_u64_strict(std::string_view text) noexcept;

/// Finite double: must start with a digit, sign or '.', the whole string
/// must be consumed (no leading whitespace of any kind, no trailing
/// garbage), hex-float literals are rejected, and the value must be
/// finite and inside double range ("1e999" and "nan"/"inf" are
/// rejected).
std::optional<double> parse_double_strict(std::string_view text) noexcept;

/// CLI wrappers: like the _strict functions but throwing
/// std::invalid_argument naming `what` (e.g. "--trials") on bad input.
std::uint64_t parse_u64_arg(const std::string& text, const std::string& what);
double parse_double_arg(const std::string& text, const std::string& what);

/// Reads the environment variable `name` through parse_u64_strict.
/// Unset -> nullopt. Malformed or overflowing values print one warning to
/// stderr and also return nullopt, so callers fall back to their default
/// (an environment variable must never abort the process).
std::optional<std::uint64_t> env_u64(const char* name) noexcept;

}  // namespace omflp
