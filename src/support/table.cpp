#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace omflp {

TableWriter::TableWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  OMFLP_REQUIRE(!columns_.empty(), "TableWriter: need at least one column");
}

TableWriter& TableWriter::begin_row() {
  if (!rows_.empty())
    OMFLP_REQUIRE(rows_.back().size() == columns_.size(),
                  "TableWriter: previous row incomplete");
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

TableWriter& TableWriter::add(std::string value) {
  OMFLP_REQUIRE(!rows_.empty(), "TableWriter: begin_row() before add()");
  OMFLP_REQUIRE(rows_.back().size() < columns_.size(),
                "TableWriter: row already full");
  rows_.back().emplace_back(std::move(value));
  return *this;
}

TableWriter& TableWriter::add(const char* value) {
  return add(std::string(value));
}

TableWriter& TableWriter::add(double value) {
  OMFLP_REQUIRE(!rows_.empty(), "TableWriter: begin_row() before add()");
  OMFLP_REQUIRE(rows_.back().size() < columns_.size(),
                "TableWriter: row already full");
  rows_.back().emplace_back(value);
  return *this;
}

TableWriter& TableWriter::add(long long value) {
  OMFLP_REQUIRE(!rows_.empty(), "TableWriter: begin_row() before add()");
  OMFLP_REQUIRE(rows_.back().size() < columns_.size(),
                "TableWriter: row already full");
  rows_.back().emplace_back(value);
  return *this;
}

void TableWriter::set_precision(int digits) {
  OMFLP_REQUIRE(digits > 0 && digits <= 17, "TableWriter: bad precision");
  precision_ = digits;
}

std::string TableWriter::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell))
    return std::to_string(*i);
  const double v = std::get<double>(cell);
  std::ostringstream os;
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    // Integral doubles print without trailing zeros unless tiny precision.
    os << std::setprecision(precision_ + 2) << v;
  } else {
    os << std::setprecision(precision_) << v;
  }
  return os.str();
}

void TableWriter::write_markdown(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << ' ' << v << std::string(width[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(columns_);
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rendered) emit_row(row);
}

void TableWriter::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(format_cell(row[c]));
    }
    os << '\n';
  }
}

std::string TableWriter::to_markdown() const {
  std::ostringstream os;
  write_markdown(os);
  return os.str();
}

std::string TableWriter::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace omflp
