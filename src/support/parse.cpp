#include "support/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace omflp {

std::optional<std::uint64_t> parse_u64_strict(
    std::string_view text) noexcept {
  std::size_t i = 0;
  if (!text.empty() && text[0] == '+') i = 1;
  if (i == text.size()) return std::nullopt;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parse_double_strict(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  // strtod skips any leading whitespace (space, tab, newline, vertical
  // tab, ...) and accepts hex-float literals; strictness forbids both —
  // the first character must already be part of a plain decimal number.
  const char front = text.front();
  if (!(front == '+' || front == '-' || front == '.' ||
        (front >= '0' && front <= '9')))
    return std::nullopt;
  for (const char c : text)
    if (c == 'x' || c == 'X') return std::nullopt;  // no hex floats
  const std::string buffer(text);  // strtod needs NUL termination
  errno = 0;
  char* end = nullptr;
  // omflp-lint: allow(raw-parse) the sanctioned call: this IS the strict wrapper
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || end == buffer.c_str())
    return std::nullopt;
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

std::uint64_t parse_u64_arg(const std::string& text,
                            const std::string& what) {
  if (const auto value = parse_u64_strict(text)) return *value;
  throw std::invalid_argument(what + ": '" + text +
                              "' is not a non-negative integer in the "
                              "64-bit range");
}

double parse_double_arg(const std::string& text, const std::string& what) {
  if (const auto value = parse_double_strict(text)) return *value;
  throw std::invalid_argument(what + ": '" + text +
                              "' is not a finite number");
}

std::optional<std::uint64_t> env_u64(const char* name) noexcept {
  const char* text = std::getenv(name);
  if (text == nullptr) return std::nullopt;
  const auto value = parse_u64_strict(text);
  if (!value)
    std::fprintf(stderr,
                 "omflp: ignoring malformed %s='%s' (expected a "
                 "non-negative integer)\n",
                 name, text);
  return value;
}

}  // namespace omflp
