#include "support/parallel.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "support/assert.hpp"
#include "support/parse.hpp"

namespace omflp {

std::size_t default_thread_count() {
  // Strict parse: "8abc" used to read as 8; it now warns and falls back
  // to hardware concurrency, as does an explicit 0.
  if (const auto v = env_u64("OMFLP_THREADS")) {
    if (*v >= 1) return static_cast<std::size_t>(*v);
    std::fprintf(stderr,
                 "omflp: OMFLP_THREADS must be >= 1; using hardware "
                 "concurrency\n");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  OMFLP_REQUIRE(fn != nullptr, "parallel_for: null function");
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Dynamic chunk claim via an atomic cursor: chunks are small enough to
  // balance, large enough to avoid contention.
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::atomic<bool> has_error{false};

  auto worker = [&]() {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= n || has_error.load(std::memory_order_relaxed)) return;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          bool expected = false;
          if (has_error.compare_exchange_strong(expected, true))
            first_error = std::current_exception();
          return;
        }
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  }  // join

  if (has_error.load()) std::rethrow_exception(first_error);
}

}  // namespace omflp
