// Lightweight contract macros used throughout the library.
//
// OMFLP_REQUIRE  — precondition on caller-supplied data; throws
//                  std::invalid_argument so misuse is recoverable/testable.
// OMFLP_CHECK    — internal invariant; throws std::logic_error. These stay
//                  enabled in release builds: the algorithms in this library
//                  are the product, and a silently wrong facility placement
//                  is worse than an aborted benchmark run.
// OMFLP_ASSERT   — hot-path invariant, compiled out unless OMFLP_DEBUG_CHECKS.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace omflp::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "OMFLP_REQUIRE failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "OMFLP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace omflp::detail

#define OMFLP_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::omflp::detail::throw_require(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)

#define OMFLP_CHECK(expr, msg)                                           \
  do {                                                                   \
    if (!(expr))                                                         \
      ::omflp::detail::throw_check(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)

#if defined(OMFLP_DEBUG_CHECKS)
#define OMFLP_ASSERT(expr, msg) OMFLP_CHECK(expr, msg)
#else
#define OMFLP_ASSERT(expr, msg) \
  do {                          \
  } while (false)
#endif
