// CommoditySet — a subset of the commodity universe S, the σ of the paper.
//
// The entire library manipulates configurations σ ⊆ S and request demand
// sets s_r ⊆ S; this is the one representation used everywhere. It is a
// dynamic bitset pinned to a fixed universe size so set algebra between
// sets of different universes is rejected loudly instead of silently
// truncating.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace omflp {

class CommoditySet {
 public:
  /// Empty set over an empty universe; mostly useful as a placeholder.
  CommoditySet() = default;

  /// Empty set over a universe of `universe` commodities. The word count
  /// is computed in std::size_t: `universe + 63` in CommodityId
  /// arithmetic wraps for universes near the maximum, which used to
  /// produce a zero-word set that add() then wrote past (heap overflow
  /// on fuzzed traces declaring |S| = 2^32 - 1).
  explicit CommoditySet(CommodityId universe)
      : universe_(universe),
        words_((static_cast<std::size_t>(universe) + 63) / 64, 0) {}

  CommoditySet(CommodityId universe, std::initializer_list<CommodityId> ids)
      : CommoditySet(universe) {
    for (CommodityId e : ids) add(e);
  }

  static CommoditySet empty_set(CommodityId universe) {
    return CommoditySet(universe);
  }

  /// The full universe S.
  static CommoditySet full_set(CommodityId universe) {
    CommoditySet s(universe);
    for (auto& w : s.words_) w = ~0ULL;
    s.trim();
    return s;
  }

  static CommoditySet singleton(CommodityId universe, CommodityId e) {
    CommoditySet s(universe);
    s.add(e);
    return s;
  }

  CommodityId universe_size() const noexcept { return universe_; }

  void add(CommodityId e) {
    OMFLP_REQUIRE(e < universe_, "CommoditySet::add: commodity out of range");
    words_[e >> 6] |= (1ULL << (e & 63));
  }

  void remove(CommodityId e) {
    OMFLP_REQUIRE(e < universe_,
                  "CommoditySet::remove: commodity out of range");
    words_[e >> 6] &= ~(1ULL << (e & 63));
  }

  bool contains(CommodityId e) const {
    OMFLP_REQUIRE(e < universe_,
                  "CommoditySet::contains: commodity out of range");
    return (words_[e >> 6] >> (e & 63)) & 1ULL;
  }

  /// |σ|
  CommodityId count() const noexcept {
    CommodityId c = 0;
    for (std::uint64_t w : words_)
      c += static_cast<CommodityId>(__builtin_popcountll(w));
    return c;
  }

  bool empty() const noexcept {
    for (std::uint64_t w : words_)
      if (w) return false;
    return true;
  }

  bool is_full() const noexcept { return count() == universe_; }

  CommoditySet& operator|=(const CommoditySet& o) {
    check_same_universe(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  CommoditySet& operator&=(const CommoditySet& o) {
    check_same_universe(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// Set difference: this \ o.
  CommoditySet& operator-=(const CommoditySet& o) {
    check_same_universe(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend CommoditySet operator|(CommoditySet a, const CommoditySet& b) {
    a |= b;
    return a;
  }
  friend CommoditySet operator&(CommoditySet a, const CommoditySet& b) {
    a &= b;
    return a;
  }
  friend CommoditySet operator-(CommoditySet a, const CommoditySet& b) {
    a -= b;
    return a;
  }

  bool is_subset_of(const CommoditySet& o) const {
    check_same_universe(o);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  bool intersects(const CommoditySet& o) const {
    check_same_universe(o);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  bool operator==(const CommoditySet& o) const noexcept {
    return universe_ == o.universe_ && words_ == o.words_;
  }

  /// Visit every contained commodity in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(static_cast<CommodityId>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

  std::vector<CommodityId> to_vector() const {
    std::vector<CommodityId> out;
    out.reserve(count());
    for_each([&](CommodityId e) { out.push_back(e); });
    return out;
  }

  /// Smallest contained commodity; requires non-empty.
  CommodityId first() const {
    OMFLP_REQUIRE(!empty(), "CommoditySet::first: set is empty");
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      if (words_[wi])
        return static_cast<CommodityId>(
            wi * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[wi])));
    return kInvalidCommodity;  // unreachable
  }

  /// Debug rendering, e.g. "{0,3,7}/8".
  std::string to_string() const;

  std::size_t hash() const noexcept {
    std::size_t h = 1469598103934665603ULL ^ universe_;
    for (std::uint64_t w : words_) {
      h ^= static_cast<std::size_t>(w);
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  void check_same_universe(const CommoditySet& o) const {
    OMFLP_REQUIRE(universe_ == o.universe_,
                  "CommoditySet: operation on sets over different universes");
  }

  void trim() noexcept {
    const CommodityId tail = universe_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (1ULL << tail) - 1ULL;
  }

  CommodityId universe_ = 0;
  std::vector<std::uint64_t> words_;
};

struct CommoditySetHash {
  std::size_t operator()(const CommoditySet& s) const noexcept {
    return s.hash();
  }
};

}  // namespace omflp
