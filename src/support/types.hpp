// Shared strong-ish aliases for the whole library. Points of the metric
// space, commodities of the universe S, requests of the online sequence and
// opened facilities are all identified by dense indices; invalid sentinel
// values are provided for "not yet assigned" states.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace omflp {

/// Index of a point of the metric space M (0 .. num_points-1).
using PointId = std::uint32_t;
/// Index of a commodity in the universe S (0 .. num_commodities-1).
using CommodityId = std::uint32_t;
/// Position of a request in the online sequence.
using RequestId = std::size_t;
/// Index of a facility in the order it was (irrevocably) opened.
using FacilityId = std::size_t;

inline constexpr PointId kInvalidPoint = std::numeric_limits<PointId>::max();
inline constexpr CommodityId kInvalidCommodity =
    std::numeric_limits<CommodityId>::max();
inline constexpr FacilityId kInvalidFacility =
    std::numeric_limits<FacilityId>::max();
inline constexpr RequestId kInvalidRequest =
    std::numeric_limits<RequestId>::max();

/// Infinity used for "no facility yet" distances.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

}  // namespace omflp
