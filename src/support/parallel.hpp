// Minimal shared-memory parallelism for the experiment harness.
//
// Competitive-ratio experiments are embarrassingly parallel over (parameter
// point, seed) pairs; parallel_for distributes index ranges over a pool of
// std::jthread workers with static chunking (work items here have similar
// cost, so static beats a work-stealing queue in both simplicity and
// determinism of scheduling). Exceptions from workers are captured and
// rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace omflp {

/// Number of worker threads to use by default: hardware concurrency,
/// overridable with the OMFLP_THREADS environment variable.
std::size_t default_thread_count();

/// Invoke fn(i) for every i in [0, n), distributed over `threads` workers.
/// With threads <= 1 runs inline (useful under sanitizers / debugging).
/// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace omflp
