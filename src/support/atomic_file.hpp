// Atomic file publication: write-to-temp + rename, so a crash (or a
// thrown exception) mid-write never leaves a truncated or corrupt
// artifact at the destination path — readers observe either the old
// content or the complete new content, never a torn state.
//
// Two shapes:
//   * write_file_atomic — one-shot: hand over the full content;
//   * AtomicFileWriter  — streaming: expose an std::ostream for writers
//     that produce output incrementally (tracelogs, metrics, BENCH
//     json); commit() publishes, destruction without commit() abandons
//     the temp file and leaves any previous destination intact.
//
// The temp file lives next to the destination (`<path>.tmp`) so the
// rename is within one directory — atomic on POSIX. Concurrent writers
// to the same path are not coordinated; the engine's checkpoint
// publication is single-threaded by design.
#pragma once

#include <fstream>
#include <string>

namespace omflp {

/// The temp path write_file_atomic / AtomicFileWriter stage into before
/// renaming (exposed so crash-recovery code can find an in-flight file).
std::string atomic_temp_path(const std::string& path);

/// Writes `content` to `path` atomically. Throws std::runtime_error when
/// the temp file cannot be created, written, flushed, or renamed; the
/// destination is untouched in every failure case.
void write_file_atomic(const std::string& path, const std::string& content);

/// Streaming variant: writes into `<path>.tmp`; commit() flushes and
/// renames over `path`. Destruction without commit() removes the temp
/// file (abandon semantics).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The staging stream; valid until commit().
  std::ostream& stream() { return file_; }

  /// Flush, close and rename into place. Throws std::runtime_error on
  /// any IO failure (the destination stays untouched); idempotent no-op
  /// after a successful commit.
  void commit();

  bool committed() const noexcept { return committed_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream file_;
  bool committed_ = false;
};

}  // namespace omflp
