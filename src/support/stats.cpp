#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace omflp {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double Summary::quantile(double q) const {
  OMFLP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  OMFLP_REQUIRE(!samples_.empty(), "quantile: no samples");
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Summary::ci95_halfwidth() const noexcept { return 1.96 * stats_.sem(); }

std::pair<double, double> Summary::bootstrap_ci95(std::size_t resamples,
                                                  std::uint64_t seed) const {
  OMFLP_REQUIRE(!samples_.empty(), "bootstrap_ci95: no samples");
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i)
      acc += samples_[rng.uniform_index(samples_.size())];
    means.push_back(acc / static_cast<double>(samples_.size()));
  }
  std::sort(means.begin(), means.end());
  const std::size_t lo =
      static_cast<std::size_t>(0.025 * static_cast<double>(resamples));
  const std::size_t hi =
      static_cast<std::size_t>(0.975 * static_cast<double>(resamples));
  return {means[lo], means[std::min(hi, resamples - 1)]};
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  OMFLP_REQUIRE(xs.size() == ys.size(), "fit_linear: size mismatch");
  OMFLP_REQUIRE(xs.size() >= 2, "fit_linear: need at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace omflp
