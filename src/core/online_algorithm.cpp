#include "core/online_algorithm.hpp"

#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

void OnlineAlgorithm::depart(RequestId id, const Request& request,
                             SolutionLedger& ledger) {
  // Frozen deletion policy: nothing to undo.
  (void)id;
  (void)request;
  (void)ledger;
}

void OnlineAlgorithm::serialize_state(CkptWriter& writer) const {
  // Stateless beyond reset(): nothing to capture.
  (void)writer;
}

void OnlineAlgorithm::restore_state(CkptReader& reader) { (void)reader; }

SolutionLedger run_online(OnlineAlgorithm& algorithm, const Instance& instance,
                          ConnectionChargePolicy policy,
                          OverflowPolicy overflow) {
  SolutionLedger ledger(instance.metric_ptr(), instance.cost_ptr(), policy,
                        instance.capacities(), overflow);
  ProblemContext context{instance.metric_ptr(), instance.cost_ptr()};
  algorithm.reset(context);
  for (const Request& request : instance.requests()) {
    ledger.begin_request(request);
    algorithm.serve(request, ledger);
    ledger.finish_request();
    OMFLP_PERF_COUNT(requests_served);
  }
  return ledger;
}

}  // namespace omflp
