// OnlineAlgorithm — the interface every OMFLP algorithm implements, plus
// the runner that replays an instance's request sequence through an
// algorithm into a SolutionLedger.
//
// The contract mirrors the paper's online model: reset() hands the
// algorithm everything known beforehand (the metric space, the cost
// oracle, |S|); serve() reveals one request and must leave it fully
// covered in the ledger; decisions recorded in the ledger are irrevocable.
#pragma once

#include <memory>
#include <string>

#include "instance/instance.hpp"
#include "solution/solution.hpp"

namespace omflp {

struct ProblemContext {
  MetricPtr metric;
  CostModelPtr cost;

  CommodityId num_commodities() const { return cost->num_commodities(); }
};

class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Prepare for a fresh instance. Called before the first serve();
  /// implementations must drop all state from previous runs.
  virtual void reset(const ProblemContext& context) = 0;

  /// Serve one request: open facilities / record assignments through the
  /// ledger. run_online() brackets this with begin_request /
  /// finish_request, so implementations only open and assign.
  virtual void serve(const Request& request, SolutionLedger& ledger) = 0;
};

/// Replay the instance through the algorithm; returns the priced ledger.
SolutionLedger run_online(OnlineAlgorithm& algorithm,
                          const Instance& instance,
                          ConnectionChargePolicy policy =
                              ConnectionChargePolicy::kPerFacility);

}  // namespace omflp
