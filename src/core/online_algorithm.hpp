// OnlineAlgorithm — the interface every OMFLP algorithm implements, plus
// the runner that replays an instance's request sequence through an
// algorithm into a SolutionLedger.
//
// The contract mirrors the paper's online model: reset() hands the
// algorithm everything known beforehand (the metric space, the cost
// oracle, |S|); serve() reveals one request and must leave it fully
// covered in the ledger; decisions recorded in the ledger are irrevocable.
#pragma once

#include <memory>
#include <string>

#include "instance/instance.hpp"
#include "solution/solution.hpp"

namespace omflp {

class CkptReader;
class CkptWriter;

struct ProblemContext {
  MetricPtr metric;
  CostModelPtr cost;

  CommodityId num_commodities() const { return cost->num_commodities(); }
};

class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Prepare for a fresh instance. Called before the first serve();
  /// implementations must drop all state from previous runs.
  virtual void reset(const ProblemContext& context) = 0;

  /// Serve one request: open facilities / record assignments through the
  /// ledger. run_online() brackets this with begin_request /
  /// finish_request, so implementations only open and assign.
  virtual void serve(const Request& request, SolutionLedger& ledger) = 0;

  /// Dynamic streams (core/stream_runner.hpp): notification that the
  /// earlier arrival `id` has departed. Called between serve()s, after
  /// the ledger has already retired the request (active-interval cost
  /// re-accounting is ledger-level and applies to every algorithm). The
  /// default is the *frozen* deletion policy: internal state keeps the
  /// departed request's contributions — decisions stay irrevocable and
  /// past investment is treated as sunk, which is the right (and only
  /// possible) policy for the memoryless algorithms (RAND-OMFLP,
  /// Meyerson, the greedy family). Algorithms that maintain per-request
  /// potentials override this with bid rollback (PD-OMFLP, Fotakis).
  virtual void depart(RequestId id, const Request& request,
                      SolutionLedger& ledger);

  /// Checkpoint/restore (instance/checkpoint_io.hpp). serialize_state
  /// writes the algorithm's complete mutable state in canonical form —
  /// serialize → restore → serialize must be byte-identical, and a
  /// restored algorithm must continue the run *bitwise* identically to
  /// one that never stopped. restore_state is called on a freshly
  /// reset() algorithm (same options and seed, same ProblemContext);
  /// per-run caches that reset() rebuilds deterministically are not
  /// serialized. The defaults are no-ops for stateless algorithms
  /// (AlwaysOpen); everything stateful overrides both.
  virtual void serialize_state(CkptWriter& writer) const;
  virtual void restore_state(CkptReader& reader);
};

/// Replay the instance through the algorithm; returns the priced ledger.
/// A capacitated instance (Instance::capacities()) gets a capacity-aware
/// ledger with `overflow` deciding what happens at a full facility.
SolutionLedger run_online(OnlineAlgorithm& algorithm,
                          const Instance& instance,
                          ConnectionChargePolicy policy =
                              ConnectionChargePolicy::kPerFacility,
                          OverflowPolicy overflow =
                              OverflowPolicy::kReassign);

}  // namespace omflp
