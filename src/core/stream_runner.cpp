#include "core/stream_runner.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

/// depart / lease_expire retirement marker, emitted before the
/// algorithm's depart() hook so the retirement precedes any bid_rollback
/// it causes in the trace.
void emit_retire(TraceEventKind kind, RequestId id,
                 std::uint64_t stream_event) {
  if (!obs::tracing()) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.request = id;
  ev.stream_event = stream_event;
  obs::emit(ev);
}

}  // namespace

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void bad_event(std::uint64_t t, const std::string& what) {
  throw std::invalid_argument("run_stream: event " + std::to_string(t) +
                              ": " + what);
}

}  // namespace

namespace {

/// An explicit option override beats the source's own capacities; both
/// null keeps the run uncapacitated.
CapacityMap session_capacities(EventSource& source,
                               const StreamRunOptions& options) {
  return options.capacities ? options.capacities : source.capacities();
}

/// Validates the source before the ledger is constructed from it, so an
/// incomplete source fails with the stream-level message (not the
/// ledger's null-pointer one).
SolutionLedger make_session_ledger(EventSource& source,
                                   const StreamRunOptions& options) {
  OMFLP_REQUIRE(options.batch_size > 0, "run_stream: batch_size must be "
                                        "positive");
  OMFLP_REQUIRE(source.metric() != nullptr && source.cost() != nullptr,
                "run_stream: incomplete event source");
  return SolutionLedger(source.metric(), source.cost(), options.policy,
                        session_capacities(source, options),
                        options.overflow);
}

}  // namespace

StreamSession::StreamSession(OnlineAlgorithm& algorithm, EventSource& source,
                             const StreamRunOptions& options)
    : algorithm_(algorithm),
      source_(source),
      options_(options),
      result_(make_session_ledger(source, options)) {
  algorithm_.reset(ProblemContext{source_.metric(), source_.cost()});
  if (options_.verify)
    verifier_.emplace(source_.metric(), source_.cost(), 1e-6,
                      session_capacities(source_, options_));
  batch_.reserve(options_.batch_size);
}

namespace {

const char* policy_tag(ConnectionChargePolicy policy) {
  return policy == ConnectionChargePolicy::kPerFacility ? "per-facility"
                                                        : "per-commodity";
}

}  // namespace

StreamSession::StreamSession(OnlineAlgorithm& algorithm, EventSource& source,
                             const StreamRunOptions& options,
                             CkptReader& reader)
    : algorithm_(algorithm),
      source_(source),
      options_(options),
      result_(make_session_ledger(source, options)) {
  algorithm_.reset(ProblemContext{source_.metric(), source_.cost()});
  batch_.reserve(options_.batch_size);

  reader.expect("session");
  clock_ = reader.u();
  exhausted_ = reader.b();
  if (reader.b() != options_.verify)
    reader.fail("checkpoint verify flag differs from the session options");
  if (reader.tok() != policy_tag(options_.policy))
    reader.fail("checkpoint connection-charge policy mismatch");
  if (reader.tok() != overflow_policy_tag(options_.overflow))
    reader.fail("checkpoint overflow policy mismatch");
  reader.expect("session-stats");
  result_.arrivals = reader.u();
  result_.departures = reader.u();
  result_.lease_expiries = reader.u();
  result_.peak_active = reader.u();
  result_.peak_resident_records = reader.u();
  result_.run_ns = reader.d();

  reader.expect("active");
  const std::uint64_t num_arrived = reader.u();
  num_active_ = reader.u();
  const std::uint64_t num_words = (num_arrived + 63) / 64;
  std::vector<std::uint64_t> words;
  words.reserve(capped_reserve(num_words));
  for (std::uint64_t i = 0; i < num_words; ++i) words.push_back(reader.u());
  // Every declared word was actually present, so num_arrived is bounded
  // by the file's real size — safe to materialize the bitmap now.
  active_.assign(num_arrived, false);
  std::size_t popcount = 0;
  for (std::uint64_t id = 0; id < num_arrived; ++id) {
    if ((words[id >> 6] >> (id & 63)) & 1) {
      active_[id] = true;
      ++popcount;
    }
  }
  if (popcount != num_active_)
    reader.fail("active-request bitmap disagrees with the active count");
  if (result_.arrivals != num_arrived)
    reader.fail("arrival count disagrees with the active bitmap");

  reader.expect("expiries");
  const std::uint64_t num_expiries = reader.u();
  for (std::uint64_t i = 0; i < num_expiries; ++i) {
    reader.expect("expiry");
    const std::uint64_t deadline = reader.u();
    const auto id = static_cast<RequestId>(reader.u());
    if (id >= active_.size()) reader.fail("expiry of an unknown arrival");
    expiries_.emplace(deadline, id);
  }

  if (options_.verify) {
    verifier_.emplace(source_.metric(), source_.cost(), 1e-6,
                      session_capacities(source_, options_));
    verifier_->restore(reader);
  }
  result_.ledger.restore(reader);
  if (result_.ledger.num_requests() != num_arrived)
    reader.fail("ledger request count disagrees with the arrival count");
  if (result_.ledger.num_active_requests() != num_active_)
    reader.fail("ledger active count disagrees with the session's");

  reader.expect("algo");
  if (reader.bytes() != algorithm_.name())
    reader.fail("checkpoint belongs to a different algorithm");
  algorithm_.restore_state(reader);

  source_.skip_events(clock_);
}

void StreamSession::checkpoint(CkptWriter& writer) const {
  OMFLP_REQUIRE(!finished_, "StreamSession: checkpoint after finish");
  OMFLP_REQUIRE(!result_.ledger.request_in_flight(),
                "StreamSession: checkpoint with a request in flight");
  writer.line("session")
      .u(clock_)
      .b(exhausted_)
      .b(options_.verify)
      .tok(policy_tag(options_.policy))
      .tok(overflow_policy_tag(options_.overflow));
  writer.line("session-stats")
      .u(result_.arrivals)
      .u(result_.departures)
      .u(result_.lease_expiries)
      .u(result_.peak_active)
      .u(result_.peak_resident_records)
      .d(result_.run_ns);
  writer.line("active").u(active_.size()).u(num_active_);
  std::vector<std::uint64_t> words((active_.size() + 63) / 64, 0);
  for (std::size_t id = 0; id < active_.size(); ++id)
    if (active_[id]) words[id >> 6] |= (1ULL << (id & 63));
  for (const std::uint64_t w : words) writer.u(w);
  // Canonical form: the pending expiries sorted ascending — pop order is
  // fully determined by (deadline, id), so heap layout is irrelevant.
  auto heap = expiries_;
  std::vector<Expiry> pending;
  pending.reserve(heap.size());
  while (!heap.empty()) {
    pending.push_back(heap.top());
    heap.pop();
  }
  writer.line("expiries").u(pending.size());
  for (const auto& [deadline, id] : pending)
    writer.line("expiry").u(deadline).u(id);
  if (verifier_) verifier_->serialize(writer);
  result_.ledger.serialize(writer);
  writer.line("algo").bytes(algorithm_.name());
  algorithm_.serialize_state(writer);
}

void StreamSession::retire(RequestId id, std::uint64_t event_index) {
  SolutionLedger& ledger = result_.ledger;
  ledger.retire_request(id, event_index);
  active_[id] = false;
  --num_active_;
  if (verifier_) verifier_->on_retire(id, event_index, ledger);
  // The record survives until the post-batch compaction, so the
  // depart() hook may still read it.
  algorithm_.depart(id, ledger.request_record(id).request, ledger);
}

void StreamSession::process_event(const StreamEvent& event) {
  SolutionLedger& ledger = result_.ledger;
  const MetricSpace& metric = ledger.metric();
  const FacilityCostModel& cost = ledger.cost_model();

  while (!expiries_.empty() && expiries_.top().first <= clock_) {
    const auto [deadline, id] = expiries_.top();
    expiries_.pop();
    if (!active_[id]) continue;  // departed explicitly before expiry
    emit_retire(TraceEventKind::kLeaseExpire, id, deadline);
    retire(id, deadline);
    ++result_.lease_expiries;
  }

  if (event.kind == StreamEvent::Kind::kArrival) {
    // Same checks as EventStream::validate, with the event index in
    // the message. (begin_request would also reject these, but a
    // programmatically-built source deserves a stream-level error,
    // and nothing malformed may reach the raw-pointer kernels.)
    if (event.request.location >= metric.num_points())
      bad_event(clock_, "arrival location outside the metric space");
    if (event.request.commodities.universe_size() != cost.num_commodities())
      bad_event(clock_, "arrival demand set over the wrong universe");
    if (event.request.commodities.empty())
      bad_event(clock_, "empty demand set");
    const RequestId id = active_.size();
    ledger.begin_request(event.request);
    algorithm_.serve(event.request, ledger);
    ledger.finish_request();
    OMFLP_PERF_COUNT(requests_served);
    active_.push_back(true);
    ++num_active_;
    if (event.lease > 0)
      expiries_.emplace(lease_deadline(clock_, event.lease), id);
    if (verifier_) verifier_->on_arrival(id, event.request, ledger);
    ++result_.arrivals;
  } else {
    if (event.target >= active_.size())
      bad_event(clock_, "departure of an arrival that has not happened");
    if (!active_[event.target])
      bad_event(clock_, "departure of an arrival that is no longer active");
    emit_retire(TraceEventKind::kDepart, event.target, clock_);
    retire(event.target, clock_);
    ++result_.departures;
  }

  ++clock_;
  if (num_active_ > result_.peak_active) result_.peak_active = num_active_;
  const std::size_t resident = ledger.request_records().size();
  if (resident > result_.peak_resident_records)
    result_.peak_resident_records = resident;
}

std::size_t StreamSession::step_batch() {
  OMFLP_REQUIRE(!finished_, "StreamSession: step_batch after finish");
  if (exhausted_) return 0;

  const std::uint64_t start_ns = now_ns();
  batch_.clear();
  const std::size_t pulled =
      source_.next_batch(batch_, options_.batch_size);
  if (pulled == 0) {
    exhausted_ = true;
    result_.run_ns += static_cast<double>(now_ns() - start_ns);
    return 0;
  }
  for (const StreamEvent& event : batch_) process_event(event);
  if (options_.compact) result_.ledger.compact_retired_prefix();
  result_.run_ns += static_cast<double>(now_ns() - start_ns);
  return pulled;
}

StreamRunResult StreamSession::finish() {
  OMFLP_REQUIRE(exhausted_, "StreamSession: finish before exhaustion");
  OMFLP_REQUIRE(!finished_, "StreamSession: finish called twice");
  finished_ = true;
  result_.events = clock_;
  if (verifier_) result_.violation = verifier_->finish(result_.ledger);
  return std::move(result_);
}

StreamRunResult run_stream(OnlineAlgorithm& algorithm, EventSource& source,
                           const StreamRunOptions& options) {
  StreamSession session(algorithm, source, options);
  while (session.step_batch() != 0) {
  }
  return session.finish();
}

StreamRunResult run_stream(OnlineAlgorithm& algorithm,
                           const EventStream& stream,
                           const StreamRunOptions& options) {
  MaterializedEventSource source(stream);
  return run_stream(algorithm, source, options);
}

}  // namespace omflp
