#include "core/stream_runner.hpp"

#include <chrono>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void bad_event(std::uint64_t t, const std::string& what) {
  throw std::invalid_argument("run_stream: event " + std::to_string(t) +
                              ": " + what);
}

}  // namespace

StreamRunResult run_stream(OnlineAlgorithm& algorithm, EventSource& source,
                           const StreamRunOptions& options) {
  OMFLP_REQUIRE(options.batch_size > 0, "run_stream: batch_size must be "
                                        "positive");
  MetricPtr metric = source.metric();
  CostModelPtr cost = source.cost();
  OMFLP_REQUIRE(metric != nullptr && cost != nullptr,
                "run_stream: incomplete event source");

  StreamRunResult result(SolutionLedger(metric, cost, options.policy));
  SolutionLedger& ledger = result.ledger;
  algorithm.reset(ProblemContext{metric, cost});

  std::optional<StreamVerifier> verifier;
  if (options.verify) verifier.emplace(metric, cost);

  // Pending lease expiries, min-ordered on (deadline, arrival id) so
  // simultaneous expiries fire in arrival order. Entries for arrivals
  // that were explicitly departed first are skipped lazily.
  using Expiry = std::pair<std::uint64_t, RequestId>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
      expiries;
  std::vector<bool> active;  // by arrival id
  std::size_t num_active = 0;

  const std::uint64_t start_ns = now_ns();
  std::vector<StreamEvent> batch;
  batch.reserve(options.batch_size);
  std::uint64_t t = 0;

  auto retire = [&](RequestId id, std::uint64_t event_index) {
    ledger.retire_request(id, event_index);
    active[id] = false;
    --num_active;
    if (verifier) verifier->on_retire(id, event_index, ledger);
    // The record survives until the post-batch compaction, so the
    // depart() hook may still read it.
    algorithm.depart(id, ledger.request_record(id).request, ledger);
  };

  for (;;) {
    batch.clear();
    if (source.next_batch(batch, options.batch_size) == 0) break;
    for (const StreamEvent& event : batch) {
      while (!expiries.empty() && expiries.top().first <= t) {
        const auto [deadline, id] = expiries.top();
        expiries.pop();
        if (!active[id]) continue;  // departed explicitly before expiry
        retire(id, deadline);
        ++result.lease_expiries;
      }

      if (event.kind == StreamEvent::Kind::kArrival) {
        // Same checks as EventStream::validate, with the event index in
        // the message. (begin_request would also reject these, but a
        // programmatically-built source deserves a stream-level error,
        // and nothing malformed may reach the raw-pointer kernels.)
        if (event.request.location >= metric->num_points())
          bad_event(t, "arrival location outside the metric space");
        if (event.request.commodities.universe_size() !=
            cost->num_commodities())
          bad_event(t, "arrival demand set over the wrong universe");
        if (event.request.commodities.empty())
          bad_event(t, "empty demand set");
        const RequestId id = active.size();
        ledger.begin_request(event.request);
        algorithm.serve(event.request, ledger);
        ledger.finish_request();
        OMFLP_PERF_COUNT(requests_served);
        active.push_back(true);
        ++num_active;
        if (event.lease > 0)
          expiries.emplace(lease_deadline(t, event.lease), id);
        if (verifier) verifier->on_arrival(id, event.request, ledger);
        ++result.arrivals;
      } else {
        if (event.target >= active.size())
          bad_event(t, "departure of an arrival that has not happened");
        if (!active[event.target])
          bad_event(t, "departure of an arrival that is no longer active");
        retire(event.target, t);
        ++result.departures;
      }

      ++t;
      if (num_active > result.peak_active) result.peak_active = num_active;
      const std::size_t resident = ledger.request_records().size();
      if (resident > result.peak_resident_records)
        result.peak_resident_records = resident;
    }
    if (options.compact) ledger.compact_retired_prefix();
  }
  result.run_ns = static_cast<double>(now_ns() - start_ns);
  result.events = t;

  if (verifier) result.violation = verifier->finish(ledger);
  return result;
}

StreamRunResult run_stream(OnlineAlgorithm& algorithm,
                           const EventStream& stream,
                           const StreamRunOptions& options) {
  MaterializedEventSource source(stream);
  return run_stream(algorithm, source, options);
}

}  // namespace omflp
