#include "core/stream_runner.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

/// depart / lease_expire retirement marker, emitted before the
/// algorithm's depart() hook so the retirement precedes any bid_rollback
/// it causes in the trace.
void emit_retire(TraceEventKind kind, RequestId id,
                 std::uint64_t stream_event) {
  if (!obs::tracing()) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.request = id;
  ev.stream_event = stream_event;
  obs::emit(ev);
}

}  // namespace

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[noreturn]] void bad_event(std::uint64_t t, const std::string& what) {
  throw std::invalid_argument("run_stream: event " + std::to_string(t) +
                              ": " + what);
}

}  // namespace

namespace {

/// Validates the source before the ledger is constructed from it, so an
/// incomplete source fails with the stream-level message (not the
/// ledger's null-pointer one).
SolutionLedger make_session_ledger(EventSource& source,
                                   const StreamRunOptions& options) {
  OMFLP_REQUIRE(options.batch_size > 0, "run_stream: batch_size must be "
                                        "positive");
  OMFLP_REQUIRE(source.metric() != nullptr && source.cost() != nullptr,
                "run_stream: incomplete event source");
  return SolutionLedger(source.metric(), source.cost(), options.policy);
}

}  // namespace

StreamSession::StreamSession(OnlineAlgorithm& algorithm, EventSource& source,
                             const StreamRunOptions& options)
    : algorithm_(algorithm),
      source_(source),
      options_(options),
      result_(make_session_ledger(source, options)) {
  algorithm_.reset(ProblemContext{source_.metric(), source_.cost()});
  if (options_.verify)
    verifier_.emplace(source_.metric(), source_.cost());
  batch_.reserve(options_.batch_size);
}

void StreamSession::retire(RequestId id, std::uint64_t event_index) {
  SolutionLedger& ledger = result_.ledger;
  ledger.retire_request(id, event_index);
  active_[id] = false;
  --num_active_;
  if (verifier_) verifier_->on_retire(id, event_index, ledger);
  // The record survives until the post-batch compaction, so the
  // depart() hook may still read it.
  algorithm_.depart(id, ledger.request_record(id).request, ledger);
}

void StreamSession::process_event(const StreamEvent& event) {
  SolutionLedger& ledger = result_.ledger;
  const MetricSpace& metric = ledger.metric();
  const FacilityCostModel& cost = ledger.cost_model();

  while (!expiries_.empty() && expiries_.top().first <= clock_) {
    const auto [deadline, id] = expiries_.top();
    expiries_.pop();
    if (!active_[id]) continue;  // departed explicitly before expiry
    emit_retire(TraceEventKind::kLeaseExpire, id, deadline);
    retire(id, deadline);
    ++result_.lease_expiries;
  }

  if (event.kind == StreamEvent::Kind::kArrival) {
    // Same checks as EventStream::validate, with the event index in
    // the message. (begin_request would also reject these, but a
    // programmatically-built source deserves a stream-level error,
    // and nothing malformed may reach the raw-pointer kernels.)
    if (event.request.location >= metric.num_points())
      bad_event(clock_, "arrival location outside the metric space");
    if (event.request.commodities.universe_size() != cost.num_commodities())
      bad_event(clock_, "arrival demand set over the wrong universe");
    if (event.request.commodities.empty())
      bad_event(clock_, "empty demand set");
    const RequestId id = active_.size();
    ledger.begin_request(event.request);
    algorithm_.serve(event.request, ledger);
    ledger.finish_request();
    OMFLP_PERF_COUNT(requests_served);
    active_.push_back(true);
    ++num_active_;
    if (event.lease > 0)
      expiries_.emplace(lease_deadline(clock_, event.lease), id);
    if (verifier_) verifier_->on_arrival(id, event.request, ledger);
    ++result_.arrivals;
  } else {
    if (event.target >= active_.size())
      bad_event(clock_, "departure of an arrival that has not happened");
    if (!active_[event.target])
      bad_event(clock_, "departure of an arrival that is no longer active");
    emit_retire(TraceEventKind::kDepart, event.target, clock_);
    retire(event.target, clock_);
    ++result_.departures;
  }

  ++clock_;
  if (num_active_ > result_.peak_active) result_.peak_active = num_active_;
  const std::size_t resident = ledger.request_records().size();
  if (resident > result_.peak_resident_records)
    result_.peak_resident_records = resident;
}

std::size_t StreamSession::step_batch() {
  OMFLP_REQUIRE(!finished_, "StreamSession: step_batch after finish");
  if (exhausted_) return 0;

  const std::uint64_t start_ns = now_ns();
  batch_.clear();
  const std::size_t pulled =
      source_.next_batch(batch_, options_.batch_size);
  if (pulled == 0) {
    exhausted_ = true;
    result_.run_ns += static_cast<double>(now_ns() - start_ns);
    return 0;
  }
  for (const StreamEvent& event : batch_) process_event(event);
  if (options_.compact) result_.ledger.compact_retired_prefix();
  result_.run_ns += static_cast<double>(now_ns() - start_ns);
  return pulled;
}

StreamRunResult StreamSession::finish() {
  OMFLP_REQUIRE(exhausted_, "StreamSession: finish before exhaustion");
  OMFLP_REQUIRE(!finished_, "StreamSession: finish called twice");
  finished_ = true;
  result_.events = clock_;
  if (verifier_) result_.violation = verifier_->finish(result_.ledger);
  return std::move(result_);
}

StreamRunResult run_stream(OnlineAlgorithm& algorithm, EventSource& source,
                           const StreamRunOptions& options) {
  StreamSession session(algorithm, source, options);
  while (session.step_batch() != 0) {
  }
  return session.finish();
}

StreamRunResult run_stream(OnlineAlgorithm& algorithm,
                           const EventStream& stream,
                           const StreamRunOptions& options) {
  MaterializedEventSource source(stream);
  return run_stream(algorithm, source, options);
}

}  // namespace omflp
