// PD-OMFLP — the paper's deterministic primal–dual algorithm (Algorithm 1,
// Section 3), O(√|S|·log n)-competitive under Condition 1 (Theorem 4).
//
// On arrival of request r with demand set s_r, the algorithm raises the
// dual variables a_re of all not-yet-served commodities e ∈ s_r
// simultaneously at unit rate and reacts to the first constraint that
// becomes tight:
//
//   (1) a_re = d(F(e), r)                         — connect e to the
//       nearest open facility offering e (small or large);
//   (3) (a_re − d(m,r))+ + Σ_j (min{a_je, d(F(e),j)} − d(m,j))+ = f^{e}_m
//       — enough joint investment at point m: a *small* facility {e}
//       opens temporarily at m and e is served by it;
//   (2) Σ_{e∈s_r} a_re = d(F̂, r)                  — the joint investment
//       reaches the nearest *large* facility: all of s_r is re-assigned to
//       it and this round's temporary facilities are discarded;
//   (4) (Σ_e a_re − d(m,r))+ + Σ_j (min{Σ_e a_je, d(F̂,j)} − d(m,j))+ = f^S_m
//       — enough joint investment for a new large facility at m: it opens
//       (irrevocably), serves all of s_r, temporary facilities discarded.
//
// When the dual-raising finishes without (2)/(4), the temporary small
// facilities become permanent. Only permanent facilities reach the ledger,
// so ledger decisions are irrevocable as the model demands.
//
// The continuous raising is simulated exactly: all four constraint
// families are piecewise-linear in the raised amount Δ, so the algorithm
// computes the tightness time of each candidate event in closed form,
// advances to the minimum and processes events in a deterministic
// tie-break order (constraint number, then commodity id, then point id).
//
// Bid sums over past requests (the Σ_j terms) are supplied by one of two
// interchangeable strategies, selectable via PdOptions::bid_mode:
//   * kReference   — recompute every sum from first principles at each
//                    arrival (obviously correct; O(n·|M|) per arrival);
//   * kIncremental — maintain per-(commodity, point) prefix sums, updated
//                    when duals freeze and when facilities open.
// Both must produce identical runs; tests/test_pd_omflp.cpp asserts trace
// equality on randomized instances.
//
// Options beyond the paper (all default to the paper's behaviour):
//   * prediction = kOff disables large facilities entirely (constraints
//     (2)/(4) never fire). This is the ablation for the §2 discussion that
//     *without* prediction every algorithm is Ω(|S|)-competitive.
//   * large_config = kSeenUnion opens "large" facilities with the union of
//     all commodities seen so far instead of the full S — a natural
//     future-work variant (the paper's closing remarks discuss restricting
//     prediction). Constraint (2)/(4) then measure distances to facilities
//     that cover the *request's* demand set. Requires a monotone cost
//     model (f^a ≤ f^b for a ⊆ b); all shipped models are monotone.
//   * excluded_from_prediction implements the §5 closing-remarks recipe
//     for *heavy* commodities: large facilities carry S minus the excluded
//     set, constraints (2)/(4) only collect the investment of non-excluded
//     commodities, and excluded commodities are always served through the
//     small-facility constraints (1)/(3). Pair with
//     detect_heavy_commodities() from cost/heavy.hpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "kernel/bid_plane.hpp"
#include "metric/distance_oracle.hpp"

namespace omflp {

struct PdOptions {
  enum class BidMode { kReference, kIncremental };
  enum class Prediction { kOn, kOff };
  enum class LargeConfig { kFullS, kSeenUnion };
  /// What depart() does on a dynamic stream (static runs never call it):
  ///   * kRollback — withdraw the departed request's frozen bids from
  ///     every bid row (shift its clipped contribution to zero) and zero
  ///     its duals, so future facility openings are no longer subsidized
  ///     by ghosts. Decisions already made stay irrevocable.
  ///   * kFrozen   — keep the bids (the sunk-investment policy).
  enum class DeletionPolicy { kRollback, kFrozen };

  BidMode bid_mode = BidMode::kIncremental;
  Prediction prediction = Prediction::kOn;
  LargeConfig large_config = LargeConfig::kFullS;
  DeletionPolicy deletion_policy = DeletionPolicy::kRollback;
  /// Commodities kept out of large facilities (§5 heavy commodities).
  /// Default-constructed (empty universe) means "exclude nothing"; a
  /// non-empty universe must match the instance's |S|.
  CommoditySet excluded_from_prediction;
  /// Record the per-event trace (for equivalence tests / debugging).
  bool record_trace = false;
};

/// One (request, commodity) dual variable after its freeze, exported for
/// the dual-feasibility checker (Lemmas 14/16) and the Corollary 8 test.
struct PdDualRecord {
  PointId location = 0;
  std::vector<CommodityId> commodities;  // s_r in increasing order
  std::vector<double> duals;             // a_re, aligned with commodities
};

struct PdTraceEvent {
  RequestId request = 0;
  int constraint = 0;          // 1..4, which family fired
  CommodityId commodity = 0;   // kInvalidCommodity for (2)/(4)
  PointId point = 0;           // facility point involved
  double raised = 0.0;         // total Δ raised in the round up to the event
};

class PdOmflp final : public OnlineAlgorithm {
 public:
  explicit PdOmflp(PdOptions options = {});

  std::string name() const override;
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  /// Deletion handling per PdOptions::deletion_policy (kRollback by
  /// default): the departed request's clipped bid contributions are
  /// shifted out of the small and large rows and its duals zeroed, in
  /// both bid modes, so reference and incremental dynamic runs stay
  /// trace-identical.
  void depart(RequestId id, const Request& request,
              SolutionLedger& ledger) override;

  /// Checkpoint: the facility indexes, every archived request's frozen
  /// duals and maintained distances, the incremental bid rows (bitwise —
  /// recomputing them on restore would only agree to audit tolerance,
  /// not bit-for-bit), the dual records and an options guard. Caches the
  /// cost model determines (cost rows, the large cost row) are rebuilt
  /// lazily; by_commodity_ is rebuilt from the archived requests.
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

  /// Σ_r Σ_{e∈s_r} a_re — the dual objective before scaling. On dynamic
  /// runs with kRollback, departed requests' duals leave the sum (the
  /// dual bound is argued on the surviving set).
  double total_dual() const noexcept { return total_dual_; }

  /// Deep self-check of the algorithm's internal state (test hook):
  /// maintained nearest-facility distances against fresh scans, the
  /// incremental bid sums against from-scratch recomputation, and the
  /// invariants "Σ_j bids ≤ f^{{e}}_m" (constraint 3) and
  /// "Σ_j bids ≤ f^{large}_m" (constraint 4) at every point. Returns a
  /// description of the first inconsistency, or nullopt when clean.
  /// O(n·|M|·|S|); call after serve()s, not inside hot loops.
  std::optional<std::string> audit_state(double tolerance = 1e-7) const;
  const std::vector<PdDualRecord>& dual_records() const noexcept {
    return dual_records_;
  }
  const std::vector<PdTraceEvent>& trace() const noexcept { return trace_; }

  const PdOptions& options() const noexcept { return options_; }

  /// The contiguous bid arena: rows 0..|S|-1 are the per-commodity small
  /// bids, row |S| the large side. Exposed for the activated_rows stat
  /// (sparse workloads activate only the commodities they touch) and the
  /// kernel-layer tests.
  const kernel::BidPlane& bid_plane() const noexcept { return bids_; }

 private:
  // ---- per-run immutable context ------------------------------------------
  PdOptions options_;
  CostModelPtr cost_;
  std::unique_ptr<DistanceOracle> dist_;
  CommodityId num_commodities_ = 0;
  std::size_t num_points_ = 0;

  // ---- facility state -----------------------------------------------------
  struct OpenRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
  };
  /// offering_[e]: all permanent facilities whose config contains e.
  std::vector<std::vector<OpenRecord>> offering_;
  struct LargeRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
    CommoditySet config;  // full S in kFullS mode; the union in kSeenUnion
  };
  std::vector<LargeRecord> larges_;
  /// Union of commodities demanded so far (kSeenUnion's prediction set).
  CommoditySet seen_;
  /// Normalized excluded set (empty set over S when the option is unset).
  CommoditySet excluded_;

  // ---- past-request state -------------------------------------------------
  struct PastRequest {
    PointId location = 0;
    std::vector<CommodityId> commodities;
    std::vector<double> duals;       // frozen a_je (zeroed by rollback)
    std::vector<double> small_dist;  // d(F(e), j), maintained per slot
    double dual_sum_large = 0.0;     // Σ a_je over non-excluded commodities
    double large_dist = kInfiniteDistance;  // d(F̂, j), maintained
    /// Departed and rolled back: duals are zero, bids withdrawn. The slot
    /// stays resident so arrival-order indexing keeps working; the
    /// maintained distances are still updated (cheap) so audits hold.
    bool departed = false;
  };
  std::vector<PastRequest> past_;
  /// by_commodity_[e]: (request index, slot in its commodity list).
  std::vector<std::vector<std::pair<std::size_t, std::uint32_t>>>
      by_commodity_;

  // ---- incremental bid sums (kIncremental only) ---------------------------
  /// One arena for every bid row (see kernel/bid_plane.hpp). Row e:
  /// Σ_j (min{a_je, d(F(e),j)} − d(m,j))+ over past j, lazily activated on
  /// the first posting to commodity e. Row |S| (kLargeRow):
  /// Σ_j (min{Σ_e a_je, d(F̂,j)} − d(m,j))+, activated at reset.
  kernel::BidPlane bids_;
  std::size_t large_row_ = 0;  // == num_commodities_

  // ---- cached cost rows (the cost model is immutable per run) -------------
  /// Row e = f^{{e}}_m for every m, materialized on first use.
  kernel::BidPlane cost_rows_;
  /// f^σ_m row for the most recent large configuration σ (constant in
  /// kFullS mode, refreshed when the seen-union changes).
  std::vector<double> large_cost_row_;
  CommoditySet large_cost_config_;
  bool large_cost_valid_ = false;

  // ---- serve() scratch (reused across requests) ---------------------------
  std::vector<std::vector<double>> ref_bid_scratch_;  // reference-mode rows
  std::vector<double> large_bid_scratch_;
  /// Owned copy of the request's distance row on the uncached-oracle
  /// path (the oracle's fallback buffer is single-slot; a row held for a
  /// whole event loop must not alias it).
  std::vector<double> dist_loc_scratch_;

  // ---- outputs -------------------------------------------------------------
  double total_dual_ = 0.0;
  std::vector<PdDualRecord> dual_records_;
  std::vector<PdTraceEvent> trace_;

  // ---- helpers -------------------------------------------------------------
  bool prediction_enabled() const noexcept {
    return options_.prediction == PdOptions::Prediction::kOn;
  }
  /// The configuration a new large facility would open with right now
  /// (full S or the seen union, minus the excluded commodities).
  CommoditySet current_large_config() const;
  /// Distance from point p to the nearest large facility covering
  /// `eligible_demand` (the demand minus excluded commodities), and that
  /// facility.
  std::pair<double, FacilityId> nearest_large(
      PointId p, const CommoditySet& eligible_demand) const;
  /// Distance from p to the nearest facility offering e, and the facility.
  std::pair<double, FacilityId> nearest_offering(CommodityId e,
                                                 PointId p) const;

  /// Fill `out[m]` with the constraint-(3) bid sum for commodity e at every
  /// point m (past requests only), according to the bid mode.
  void small_bid_row(CommodityId e, std::vector<double>& out) const;
  /// Same for the constraint-(4) large-facility bid sums.
  void large_bid_row(std::vector<double>& out) const;
  void recompute_small_bid_row(CommodityId e, std::vector<double>& out) const;
  void recompute_large_bid_row(std::vector<double>& out) const;

  /// Materializes (once) and returns the f^{{e}}_m cost row. The returned
  /// pointer is invalidated by a later ensure call for a new commodity
  /// (arena growth), so serve() ensures every row it needs before taking
  /// pointers.
  void ensure_singleton_cost_row(CommodityId e);
  /// Refreshes large_cost_row_ for `config` when it changed.
  const double* large_cost_row(const CommoditySet& config);

  /// Registers a newly permanent facility at `point` offering `config`
  /// with the internal indexes and (kIncremental) adjusts bid sums of past
  /// requests whose nearest-facility distances improved.
  void integrate_facility(PointId point, const CommoditySet& config,
                          FacilityId id, bool is_large);

  /// Appends the finished request to past_ / by_commodity_ and posts its
  /// contributions to the incremental bid arrays.
  void archive_request(const Request& request,
                       const std::vector<CommodityId>& commodities,
                       const std::vector<double>& duals);
};

}  // namespace omflp
