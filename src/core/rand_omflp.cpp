#include "core/rand_omflp.hpp"

#include <algorithm>
#include <cmath>

#include "instance/checkpoint_io.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

/// facility_open for the randomized algorithm: no primal-dual bid mass;
/// tightness carries the coin probability that fired (1.0 on the
/// deterministic completion path).
void emit_rand_open(const SolutionLedger& ledger, FacilityId id,
                    CommodityId commodity, double coin_p) {
  if (!obs::tracing()) return;
  const OpenFacilityRecord& record = ledger.facility(id);
  TraceEvent ev;
  ev.kind = TraceEventKind::kFacilityOpen;
  ev.request = ledger.num_requests() - 1;
  ev.commodity = commodity;
  ev.facility = id;
  ev.point = record.location;
  ev.config_size = record.config.count();
  ev.cost = record.open_cost;
  ev.tightness = coin_p;
  obs::emit(ev);
}

}  // namespace

RandOmflp::RandOmflp(RandOptions options)
    : options_(options), rng_(options.seed) {}

std::string RandOmflp::name() const { return "RAND-OMFLP"; }

void RandOmflp::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "RandOmflp::reset: incomplete context");
  cost_ = context.cost;
  metric_ = context.metric;
  dist_ = std::make_shared<DistanceOracle>(metric_);
  num_commodities_ = cost_->num_commodities();
  num_points_ = dist_->num_points();
  rng_ = Rng(options_.seed);

  offering_.assign(num_commodities_, {});
  larges_.clear();
  class_index_.clear();
  class_index_.resize(static_cast<std::size_t>(num_commodities_) + 1);
  accounting_.clear();
}

const CostClassIndex& RandOmflp::singleton_classes(CommodityId e) {
  auto& slot = class_index_[e];
  if (!slot)
    slot = std::make_unique<CostClassIndex>(
        metric_, cost_, CommoditySet::singleton(num_commodities_, e),
        dist_);
  return *slot;
}

const CostClassIndex& RandOmflp::full_classes() {
  auto& slot = class_index_[num_commodities_];
  if (!slot)
    slot = std::make_unique<CostClassIndex>(
        metric_, cost_, CommoditySet::full_set(num_commodities_), dist_);
  return *slot;
}

std::pair<double, FacilityId> RandOmflp::nearest_offering(CommodityId e,
                                                          PointId p) const {
  OMFLP_PERF_ADD(facilities_probed, offering_[e].size());
  double best = kInfiniteDistance;
  FacilityId best_id = kInvalidFacility;
  if (offering_[e].empty()) return {best, best_id};
  OMFLP_PERF_ADD(distance_lookups, offering_[e].size());
  const double* dist_p = dist_->row(p);
  for (const OpenRecord& f : offering_[e]) {
    const double d = dist_p[f.point];
    if (d < best) {
      best = d;
      best_id = f.id;
    }
  }
  return {best, best_id};
}

std::pair<double, FacilityId> RandOmflp::nearest_large(PointId p) const {
  OMFLP_PERF_ADD(facilities_probed, larges_.size());
  double best = kInfiniteDistance;
  FacilityId best_id = kInvalidFacility;
  if (larges_.empty()) return {best, best_id};
  OMFLP_PERF_ADD(distance_lookups, larges_.size());
  const double* dist_p = dist_->row(p);
  for (const OpenRecord& f : larges_) {
    const double d = dist_p[f.point];
    if (d < best) {
      best = d;
      best_id = f.id;
    }
  }
  return {best, best_id};
}

FacilityId RandOmflp::open_small(PointId m, CommodityId e,
                                 SolutionLedger& ledger, double coin_p) {
  const FacilityId id =
      ledger.open_facility(m, CommoditySet::singleton(num_commodities_, e));
  offering_[e].push_back(OpenRecord{m, id});
  emit_rand_open(ledger, id, e, coin_p);
  return id;
}

FacilityId RandOmflp::open_large(PointId m, SolutionLedger& ledger,
                                 double coin_p) {
  const FacilityId id =
      ledger.open_facility(m, CommoditySet::full_set(num_commodities_));
  larges_.push_back(OpenRecord{m, id});
  for (CommodityId e = 0; e < num_commodities_; ++e)
    offering_[e].push_back(OpenRecord{m, id});
  emit_rand_open(ledger, id, kInvalidCommodity, coin_p);
  return id;
}

void RandOmflp::serve(const Request& request, SolutionLedger& ledger) {
  OMFLP_CHECK(cost_ != nullptr, "RandOmflp: serve() before reset()");
  const PointId loc = request.location;
  const std::vector<CommodityId> commodities =
      request.commodities.to_vector();

  RandAccounting acct;
  const double open_before = ledger.opening_cost();

  // --- step 1: the cheapest all-small and single-large serving costs.
  std::vector<double> x_of(commodities.size());
  std::vector<CostClassIndex::BestOpenOption> small_open(commodities.size());
  double x_total = 0.0;
  for (std::size_t slot = 0; slot < commodities.size(); ++slot) {
    const CommodityId e = commodities[slot];
    const double connect = nearest_offering(e, loc).first;
    small_open[slot] = singleton_classes(e).best_open_option(loc);
    x_of[slot] = std::min(connect, small_open[slot].cost);
    x_total += x_of[slot];
  }
  const double z_connect = nearest_large(loc).first;
  // With a single commodity the "large" side duplicates the small side
  // (S = {e}); skip it so the algorithm degenerates to Meyerson's OFL.
  const bool use_large_side = num_commodities_ > 1;
  CostClassIndex::BestOpenOption large_open;
  double z_total = kInfiniteDistance;
  if (use_large_side) {
    large_open = full_classes().best_open_option(loc);
    z_total = std::min(z_connect, large_open.cost);
  }
  const double budget = std::min(x_total, z_total);
  OMFLP_CHECK(std::isfinite(budget),
              "RandOmflp: request cannot be served at finite cost");

  acct.budget = budget;
  acct.x_total = x_total;
  acct.z_total = z_total;

  // --- step 2: small-facility coins. One coin per (commodity, class);
  // class distances capped at the budget (see header).
  for (std::size_t slot = 0; slot < commodities.size(); ++slot) {
    const CommodityId e = commodities[slot];
    const double share = x_total > 0.0 ? x_of[slot] / x_total : 0.0;
    if (share <= 0.0) continue;
    const CostClassIndex& classes = singleton_classes(e);
    double d_prev = budget;
    for (std::size_t i = 0; i < classes.num_classes(); ++i) {
      const auto [site_dist, site] = classes.prefix_nearest(i, loc);
      const double d_i = std::min(budget, site_dist);
      const double improvement = std::max(0.0, d_prev - d_i);
      d_prev = d_i;
      if (improvement <= 0.0) continue;
      const double c_i = classes.class_cost(i);
      const double p =
          c_i > 0.0 ? std::min(1.0, improvement / c_i * share) : 1.0;
      acct.expected_small += p * c_i;
      OMFLP_PERF_COUNT(coin_flips);
      if (p > 0.0 && rng_.bernoulli(p)) open_small(site, e, ledger, p);
    }
  }

  // --- step 3: large-facility coins.
  if (use_large_side) {
    const CostClassIndex& classes = full_classes();
    double d_prev = budget;
    for (std::size_t i = 0; i < classes.num_classes(); ++i) {
      const auto [site_dist, site] = classes.prefix_nearest(i, loc);
      const double d_i = std::min(budget, site_dist);
      const double improvement = std::max(0.0, d_prev - d_i);
      d_prev = d_i;
      if (improvement <= 0.0) continue;
      const double c_i = classes.class_cost(i);
      const double p = c_i > 0.0 ? std::min(1.0, improvement / c_i) : 1.0;
      acct.expected_large += p * c_i;
      OMFLP_PERF_COUNT(coin_flips);
      if (p > 0.0 && rng_.bernoulli(p)) open_large(site, ledger, p);
    }
  }

  // --- step 4: deterministic completion for still-uncoverable
  // commodities (see header). Chooses the cheaper of the all-small /
  // single-large completions as computed in step 1.
  bool any_uncovered = false;
  for (const CommodityId e : commodities)
    if (offering_[e].empty()) {
      any_uncovered = true;
      break;
    }
  if (any_uncovered) {
    acct.completion_used = true;
    if (!use_large_side || x_total <= z_total) {
      for (std::size_t slot = 0; slot < commodities.size(); ++slot)
        if (offering_[commodities[slot]].empty())
          open_small(small_open[slot].point, commodities[slot], ledger,
                     /*coin_p=*/1.0);
    } else {
      open_large(large_open.point, ledger, /*coin_p=*/1.0);
    }
  }

  // --- step 5: connect to the cheaper of per-commodity nearest
  // facilities vs the single nearest large facility (post-build state).
  double sum_small = 0.0;
  std::vector<FacilityId> small_serving(commodities.size());
  for (std::size_t slot = 0; slot < commodities.size(); ++slot) {
    const auto [d, id] = nearest_offering(commodities[slot], loc);
    OMFLP_CHECK(id != kInvalidFacility, "RandOmflp: coverage hole");
    sum_small += d;
    small_serving[slot] = id;
  }
  const auto [d_large, large_id] = nearest_large(loc);
  if (large_id != kInvalidFacility && d_large < sum_small) {
    for (const CommodityId e : commodities) ledger.assign(e, large_id);
  } else {
    for (std::size_t slot = 0; slot < commodities.size(); ++slot)
      ledger.assign(commodities[slot], small_serving[slot]);
  }

  if (options_.record_accounting) {
    acct.realized_open = ledger.opening_cost() - open_before;
    acct.realized_connect =
        large_id != kInvalidFacility && d_large < sum_small ? d_large
                                                            : sum_small;
    accounting_.push_back(acct);
  }
}

void RandOmflp::serialize_state(CkptWriter& writer) const {
  serialize_rng(writer, rng_);
  writer.line("offering-index").u(offering_.size());
  for (const auto& row : offering_) {
    writer.line("offering").u(row.size());
    for (const OpenRecord& f : row) writer.u(f.point).u(f.id);
  }
  writer.line("larges").u(larges_.size());
  for (const OpenRecord& f : larges_) writer.u(f.point).u(f.id);
  writer.line("accounting").u(accounting_.size());
  for (const RandAccounting& a : accounting_) {
    writer.line("acct")
        .d(a.budget)
        .d(a.x_total)
        .d(a.z_total)
        .d(a.expected_small)
        .d(a.expected_large)
        .d(a.realized_open)
        .d(a.realized_connect)
        .b(a.completion_used);
  }
}

void RandOmflp::restore_state(CkptReader& reader) {
  restore_rng(reader, rng_);
  reader.expect("offering-index");
  if (reader.u() != offering_.size())
    reader.fail("offering index universe mismatch");
  for (auto& row : offering_) {
    reader.expect("offering");
    const std::uint64_t n = reader.u();
    row.reserve(capped_reserve(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      OpenRecord f;
      f.point = static_cast<PointId>(reader.u());
      f.id = static_cast<FacilityId>(reader.u());
      row.push_back(f);
    }
  }
  reader.expect("larges");
  const std::uint64_t num_larges = reader.u();
  larges_.reserve(capped_reserve(num_larges));
  for (std::uint64_t i = 0; i < num_larges; ++i) {
    OpenRecord f;
    f.point = static_cast<PointId>(reader.u());
    f.id = static_cast<FacilityId>(reader.u());
    larges_.push_back(f);
  }
  reader.expect("accounting");
  const std::uint64_t num_acct = reader.u();
  accounting_.reserve(capped_reserve(num_acct));
  for (std::uint64_t i = 0; i < num_acct; ++i) {
    reader.expect("acct");
    RandAccounting a;
    a.budget = reader.d();
    a.x_total = reader.d();
    a.z_total = reader.d();
    a.expected_small = reader.d();
    a.expected_large = reader.d();
    a.realized_open = reader.d();
    a.realized_connect = reader.d();
    a.completion_used = reader.b();
    accounting_.push_back(a);
  }
}

}  // namespace omflp
