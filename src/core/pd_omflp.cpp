#include "core/pd_omflp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "instance/checkpoint_io.hpp"
#include "kernel/kernels.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

inline double positive_part(double x) noexcept { return x > 0.0 ? x : 0.0; }

}  // namespace

PdOmflp::PdOmflp(PdOptions options) : options_(options) {}

std::string PdOmflp::name() const {
  std::string n = "PD-OMFLP";
  if (options_.prediction == PdOptions::Prediction::kOff)
    n += "[no-prediction]";
  if (options_.large_config == PdOptions::LargeConfig::kSeenUnion)
    n += "[seen-union]";
  if (!options_.excluded_from_prediction.empty())
    n += "[exclude=" +
         std::to_string(options_.excluded_from_prediction.count()) + "]";
  if (options_.bid_mode == PdOptions::BidMode::kReference) n += "[reference]";
  return n;
}

void PdOmflp::reset(const ProblemContext& context) {
  OMFLP_REQUIRE(context.metric != nullptr && context.cost != nullptr,
                "PdOmflp::reset: incomplete context");
  cost_ = context.cost;
  dist_ = std::make_unique<DistanceOracle>(context.metric);
  num_commodities_ = cost_->num_commodities();
  num_points_ = dist_->num_points();

  offering_.assign(num_commodities_, {});
  larges_.clear();
  seen_ = CommoditySet(num_commodities_);
  if (options_.excluded_from_prediction.universe_size() == 0) {
    excluded_ = CommoditySet(num_commodities_);
  } else {
    OMFLP_REQUIRE(options_.excluded_from_prediction.universe_size() ==
                      num_commodities_,
                  "PdOmflp: excluded_from_prediction universe mismatch");
    excluded_ = options_.excluded_from_prediction;
  }
  past_.clear();
  by_commodity_.assign(num_commodities_, {});
  large_row_ = num_commodities_;
  bids_.reset(num_commodities_ + 1, num_points_);
  if (options_.bid_mode == PdOptions::BidMode::kIncremental)
    bids_.activate(large_row_);
  cost_rows_.reset(num_commodities_, num_points_);
  large_cost_row_.clear();
  large_cost_valid_ = false;
  ref_bid_scratch_.clear();
  large_bid_scratch_.clear();
  total_dual_ = 0.0;
  dual_records_.clear();
  trace_.clear();
}

void PdOmflp::ensure_singleton_cost_row(CommodityId e) {
  if (cost_rows_.active(e)) return;
  double* row = cost_rows_.activate(e);
  for (PointId m = 0; m < num_points_; ++m)
    row[m] = cost_->singleton_cost(m, e);
}

const double* PdOmflp::large_cost_row(const CommoditySet& config) {
  if (!large_cost_valid_ || !(large_cost_config_ == config)) {
    large_cost_row_.resize(num_points_);
    for (PointId m = 0; m < num_points_; ++m)
      large_cost_row_[m] = cost_->open_cost(m, config);
    large_cost_config_ = config;
    large_cost_valid_ = true;
  }
  return large_cost_row_.data();
}

CommoditySet PdOmflp::current_large_config() const {
  if (options_.large_config == PdOptions::LargeConfig::kFullS)
    return CommoditySet::full_set(num_commodities_) - excluded_;
  return seen_ - excluded_;
}

std::pair<double, FacilityId> PdOmflp::nearest_large(
    PointId p, const CommoditySet& eligible_demand) const {
  OMFLP_PERF_ADD(facilities_probed, larges_.size());
  if (larges_.empty()) return {kInfiniteDistance, kInvalidFacility};
  const double* dist_p = dist_->row(p);
  double best = kInfiniteDistance;
  FacilityId best_id = kInvalidFacility;
  std::size_t probed = 0;
  for (const LargeRecord& lf : larges_) {
    if (!eligible_demand.is_subset_of(lf.config)) continue;
    ++probed;
    const double d = dist_p[lf.point];
    if (d < best) {
      best = d;
      best_id = lf.id;
    }
  }
  OMFLP_PERF_ADD(distance_lookups, probed);
  return {best, best_id};
}

std::pair<double, FacilityId> PdOmflp::nearest_offering(CommodityId e,
                                                        PointId p) const {
  OMFLP_PERF_ADD(facilities_probed, offering_[e].size());
  if (offering_[e].empty()) return {kInfiniteDistance, kInvalidFacility};
  OMFLP_PERF_ADD(distance_lookups, offering_[e].size());
  const double* dist_p = dist_->row(p);
  double best = kInfiniteDistance;
  FacilityId best_id = kInvalidFacility;
  for (const OpenRecord& f : offering_[e]) {
    const double d = dist_p[f.point];
    if (d < best) {
      best = d;
      best_id = f.id;
    }
  }
  return {best, best_id};
}

void PdOmflp::recompute_small_bid_row(CommodityId e,
                                      std::vector<double>& out) const {
  out.assign(num_points_, 0.0);
  if (by_commodity_[e].empty()) return;
  OMFLP_PERF_ADD(distance_lookups,
                 by_commodity_[e].size() * offering_[e].size());
  for (const auto& [j, slot] : by_commodity_[e]) {
    const PastRequest& pr = past_[j];
    // Lazily fetched: a request with no facility to scan and no positive
    // bid never pays for a row materialization on the uncached-oracle
    // path. One fetch serves both the facility scan and the accumulation.
    const double* dist_j = nullptr;
    // d(F(e), j) from first principles: scan every facility offering e.
    double dist_e = kInfiniteDistance;
    if (!offering_[e].empty()) {
      dist_j = dist_->row(pr.location);
      for (const OpenRecord& f : offering_[e])
        dist_e = std::min(dist_e, dist_j[f.point]);
    }
    const double v = std::min(pr.duals[slot], dist_e);
    if (v <= 0.0) continue;
    if (dist_j == nullptr) dist_j = dist_->row(pr.location);
    OMFLP_PERF_ADD(bids_evaluated, num_points_);
    OMFLP_PERF_ADD(distance_lookups, num_points_);
    kernel::accumulate_clipped_bid(out.data(), dist_j, v, num_points_);
  }
}

void PdOmflp::recompute_large_bid_row(std::vector<double>& out) const {
  out.assign(num_points_, 0.0);
  for (const PastRequest& pr : past_) {
    const double* dist_j = larges_.empty() ? nullptr
                                           : dist_->row(pr.location);
    double dist_large = kInfiniteDistance;
    std::size_t probed = 0;
    for (const LargeRecord& lf : larges_) {
      bool covers = true;
      for (CommodityId e : pr.commodities) {
        if (excluded_.contains(e)) continue;
        if (!lf.config.contains(e)) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      ++probed;
      dist_large = std::min(dist_large, dist_j[lf.point]);
    }
    OMFLP_PERF_ADD(distance_lookups, probed);
    const double v = std::min(pr.dual_sum_large, dist_large);
    if (v <= 0.0) continue;
    OMFLP_PERF_ADD(bids_evaluated, num_points_);
    OMFLP_PERF_ADD(distance_lookups, num_points_);
    kernel::accumulate_clipped_bid(out.data(), dist_->row(pr.location), v,
                                   num_points_);
  }
}

void PdOmflp::small_bid_row(CommodityId e, std::vector<double>& out) const {
  if (options_.bid_mode == PdOptions::BidMode::kReference) {
    recompute_small_bid_row(e, out);
    return;
  }
  if (!bids_.active(e)) {
    out.assign(num_points_, 0.0);
  } else {
    const double* row = bids_.row(e);
    out.assign(row, row + num_points_);
  }
}

void PdOmflp::large_bid_row(std::vector<double>& out) const {
  if (options_.bid_mode == PdOptions::BidMode::kReference) {
    recompute_large_bid_row(out);
    return;
  }
  const double* row = bids_.row(large_row_);
  out.assign(row, row + num_points_);
}

void PdOmflp::integrate_facility(PointId point, const CommoditySet& config,
                                 FacilityId id, bool is_large) {
  const bool incremental =
      options_.bid_mode == PdOptions::BidMode::kIncremental;
  // F̂ is defined by what a facility offers, not how it was opened: with
  // |S| = 1 a "small" facility covers all of S and belongs to F̂.
  is_large = is_large || config.is_full();

  config.for_each([&](CommodityId e) {
    offering_[e].push_back(OpenRecord{point, id});
    for (const auto& [j, slot] : by_commodity_[e]) {
      PastRequest& pr = past_[j];
      const double d_new = (*dist_)(point, pr.location);
      if (d_new >= pr.small_dist[slot]) continue;
      if (incremental) {
        const double v_old = std::min(pr.duals[slot], pr.small_dist[slot]);
        const double v_new = std::min(pr.duals[slot], d_new);
        if (v_new < v_old && v_old > 0.0 && bids_.active(e)) {
          OMFLP_PERF_ADD(bids_updated, num_points_);
          OMFLP_PERF_ADD(distance_lookups, num_points_);
          kernel::shift_clipped_bid(bids_.row(e), dist_->row(pr.location),
                                    v_old, v_new, num_points_);
        }
      }
      pr.small_dist[slot] = d_new;
    }
  });

  if (!is_large) return;
  larges_.push_back(LargeRecord{point, id, config});
  for (PastRequest& pr : past_) {
    bool covers = true;
    for (CommodityId e : pr.commodities) {
      if (excluded_.contains(e)) continue;
      if (!config.contains(e)) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    const double d_new = (*dist_)(point, pr.location);
    if (d_new >= pr.large_dist) continue;
    if (incremental) {
      const double v_old = std::min(pr.dual_sum_large, pr.large_dist);
      const double v_new = std::min(pr.dual_sum_large, d_new);
      if (v_new < v_old && v_old > 0.0) {
        OMFLP_PERF_ADD(bids_updated, num_points_);
        OMFLP_PERF_ADD(distance_lookups, num_points_);
        kernel::shift_clipped_bid(bids_.row(large_row_),
                                  dist_->row(pr.location), v_old, v_new,
                                  num_points_);
      }
    }
    pr.large_dist = d_new;
  }
}

void PdOmflp::archive_request(const Request& request,
                              const std::vector<CommodityId>& commodities,
                              const std::vector<double>& duals) {
  const bool incremental =
      options_.bid_mode == PdOptions::BidMode::kIncremental;

  PastRequest pr;
  pr.location = request.location;
  pr.commodities = commodities;
  pr.duals = duals;
  pr.small_dist.resize(commodities.size());
  for (std::size_t slot = 0; slot < commodities.size(); ++slot) {
    pr.small_dist[slot] =
        nearest_offering(commodities[slot], request.location).first;
    if (!excluded_.contains(commodities[slot]))
      pr.dual_sum_large += duals[slot];
  }
  pr.large_dist =
      nearest_large(request.location, request.commodities - excluded_)
          .first;

  const std::size_t j = past_.size();
  for (std::size_t slot = 0; slot < commodities.size(); ++slot) {
    by_commodity_[commodities[slot]].emplace_back(
        j, static_cast<std::uint32_t>(slot));
    if (incremental) {
      const double v = std::min(pr.duals[slot], pr.small_dist[slot]);
      if (v > 0.0) {
        double* row = bids_.activate(commodities[slot]);
        OMFLP_PERF_ADD(bids_updated, num_points_);
        OMFLP_PERF_ADD(distance_lookups, num_points_);
        kernel::accumulate_clipped_bid(row, dist_->row(pr.location), v,
                                       num_points_);
      }
    }
  }
  if (incremental && prediction_enabled()) {
    const double v = std::min(pr.dual_sum_large, pr.large_dist);
    if (v > 0.0) {
      OMFLP_PERF_ADD(bids_updated, num_points_);
      OMFLP_PERF_ADD(distance_lookups, num_points_);
      kernel::accumulate_clipped_bid(bids_.row(large_row_),
                                     dist_->row(pr.location), v,
                                     num_points_);
    }
  }
  past_.push_back(std::move(pr));

  PdDualRecord record;
  record.location = request.location;
  record.commodities = commodities;
  record.duals = duals;
  dual_records_.push_back(std::move(record));
  for (double a : duals) total_dual_ += a;

  if (obs::tracing()) {
    // One dual_raise per (request, commodity) slot: the frozen a_re.
    for (std::size_t slot = 0; slot < commodities.size(); ++slot) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kDualRaise;
      ev.request = j;
      ev.commodity = commodities[slot];
      ev.config_size = 1;
      ev.cost = duals[slot];
      obs::emit(ev);
    }
  }
}

void PdOmflp::depart(RequestId id, const Request& request,
                     SolutionLedger& ledger) {
  (void)request;
  (void)ledger;  // ledger-level re-accounting already happened
  OMFLP_CHECK(cost_ != nullptr, "PdOmflp: depart() before reset()");
  if (options_.deletion_policy == PdOptions::DeletionPolicy::kFrozen)
    return;
  OMFLP_REQUIRE(id < past_.size(), "PdOmflp: depart of unknown request");
  PastRequest& pr = past_[id];
  OMFLP_REQUIRE(!pr.departed, "PdOmflp: request departed twice");
  const bool incremental =
      options_.bid_mode == PdOptions::BidMode::kIncremental;

  // Withdraw the currently-posted clipped contribution of every slot:
  // min{a_je, d(F(e), j)} with the *maintained* nearest distance is
  // exactly what archive_request posted and integrate_facility has been
  // shifting, so shifting it to zero removes the request from the row.
  double withdrawn = 0.0;     // bid mass leaving the rows
  double dual_removed = 0.0;  // dual objective leaving total_dual_
  for (std::size_t slot = 0; slot < pr.commodities.size(); ++slot) {
    const CommodityId e = pr.commodities[slot];
    const double v = std::min(pr.duals[slot], pr.small_dist[slot]);
    if (v > 0.0) withdrawn += v;
    if (incremental && v > 0.0 && bids_.active(e)) {
      OMFLP_PERF_ADD(bids_updated, num_points_);
      OMFLP_PERF_ADD(distance_lookups, num_points_);
      kernel::shift_clipped_bid(bids_.row(e), dist_->row(pr.location), v,
                                0.0, num_points_);
    }
    total_dual_ -= pr.duals[slot];
    dual_removed += pr.duals[slot];
    pr.duals[slot] = 0.0;
  }
  if (prediction_enabled()) {
    const double v = std::min(pr.dual_sum_large, pr.large_dist);
    if (v > 0.0) withdrawn += v;
    if (incremental && v > 0.0) {
      OMFLP_PERF_ADD(bids_updated, num_points_);
      OMFLP_PERF_ADD(distance_lookups, num_points_);
      kernel::shift_clipped_bid(bids_.row(large_row_),
                                dist_->row(pr.location), v, 0.0,
                                num_points_);
    }
  }
  pr.dual_sum_large = 0.0;
  pr.departed = true;
  if (obs::tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kBidRollback;
    ev.request = id;
    ev.bid_mass = withdrawn;
    ev.cost = dual_removed;
    obs::emit(ev);
  }
  // With the duals zeroed, reference-mode recomputation skips the slot
  // (min{0, d} is never positive) and integrate_facility's shifts become
  // no-ops, so both bid modes keep agreeing after deletions. The
  // maintained small_dist / large_dist stay updated — that keeps
  // audit_state's stale-distance check meaningful for departed slots too.
}

std::optional<std::string> PdOmflp::audit_state(double tolerance) const {
  if (cost_ == nullptr) return std::nullopt;  // never reset: nothing to audit
  std::ostringstream os;

  // 1. Maintained nearest-facility distances vs fresh scans.
  for (std::size_t j = 0; j < past_.size(); ++j) {
    const PastRequest& pr = past_[j];
    for (std::size_t slot = 0; slot < pr.commodities.size(); ++slot) {
      const double fresh =
          nearest_offering(pr.commodities[slot], pr.location).first;
      const bool both_infinite =
          !std::isfinite(fresh) && !std::isfinite(pr.small_dist[slot]);
      if (!both_infinite &&
          std::abs(fresh - pr.small_dist[slot]) > tolerance) {
        os << "stale small_dist for request " << j << " slot " << slot
           << ": maintained " << pr.small_dist[slot] << " vs fresh "
           << fresh;
        return os.str();
      }
    }
    CommoditySet demand(num_commodities_);
    for (CommodityId e : pr.commodities) demand.add(e);
    const double fresh_large =
        nearest_large(pr.location, demand - excluded_).first;
    const bool both_infinite =
        !std::isfinite(fresh_large) && !std::isfinite(pr.large_dist);
    if (!both_infinite && std::abs(fresh_large - pr.large_dist) > tolerance) {
      os << "stale large_dist for request " << j << ": maintained "
         << pr.large_dist << " vs fresh " << fresh_large;
      return os.str();
    }
  }

  // 2. Incremental bid sums vs from-scratch recomputation, plus the
  //    constraint-(3) invariant Σ_j bids ≤ f^{{e}}_m.
  std::vector<double> fresh_row;
  for (CommodityId e = 0; e < num_commodities_; ++e) {
    if (by_commodity_[e].empty() && !bids_.active(e)) continue;
    recompute_small_bid_row(e, fresh_row);
    const bool check_drift =
        options_.bid_mode == PdOptions::BidMode::kIncremental &&
        bids_.active(e);
    const double* maintained = check_drift ? bids_.row(e) : nullptr;
    for (PointId m = 0; m < num_points_; ++m) {
      if (check_drift && std::abs(maintained[m] - fresh_row[m]) >
                             tolerance * (1.0 + fresh_row[m])) {
        os << "incremental small bids drifted for e=" << e << " at m=" << m
           << ": " << maintained[m] << " vs " << fresh_row[m];
        return os.str();
      }
      const double f = cost_->singleton_cost(m, e);
      if (fresh_row[m] > f + tolerance * (1.0 + f)) {
        os << "constraint (3) invariant violated for e=" << e
           << " at m=" << m << ": bids " << fresh_row[m] << " > f " << f;
        return os.str();
      }
    }
  }

  // 3. Same for the large side (constraint (4) invariant against the
  //    *current* large configuration).
  if (prediction_enabled()) {
    const CommoditySet large_cfg = current_large_config();
    recompute_large_bid_row(fresh_row);
    const bool check_drift =
        options_.bid_mode == PdOptions::BidMode::kIncremental;
    const double* maintained = check_drift ? bids_.row(large_row_) : nullptr;
    for (PointId m = 0; m < num_points_; ++m) {
      if (check_drift && std::abs(maintained[m] - fresh_row[m]) >
                             tolerance * (1.0 + fresh_row[m])) {
        os << "incremental large bids drifted at m=" << m << ": "
           << maintained[m] << " vs " << fresh_row[m];
        return os.str();
      }
      if (!large_cfg.empty()) {
        const double f = cost_->open_cost(m, large_cfg);
        if (fresh_row[m] > f + tolerance * (1.0 + f)) {
          os << "constraint (4) invariant violated at m=" << m << ": bids "
             << fresh_row[m] << " > f " << f;
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

void PdOmflp::serve(const Request& request, SolutionLedger& ledger) {
  OMFLP_CHECK(cost_ != nullptr, "PdOmflp: serve() before reset()");
  const RequestId request_id = ledger.num_requests() - 1;
  const PointId loc = request.location;

  // The kSeenUnion prediction set includes the current request's demands.
  seen_ |= request.commodities;

  const std::vector<CommodityId> commodities =
      request.commodities.to_vector();
  const std::size_t k = commodities.size();

  std::vector<double> a(k, 0.0);
  std::vector<bool> served(k, false);
  std::size_t unserved = k;
  double raised = 0.0;

  // Eligibility for the large-facility constraints (2)/(4): every slot in
  // the paper's algorithm, everything outside the excluded set in the §5
  // heavy-commodity variant.
  std::vector<bool> eligible(k, false);
  std::size_t unserved_eligible = 0;
  for (std::size_t slot = 0; slot < k; ++slot) {
    eligible[slot] = !excluded_.contains(commodities[slot]);
    if (eligible[slot]) ++unserved_eligible;
  }
  const CommoditySet eligible_demand = request.commodities - excluded_;
  double sum_eligible = 0.0;  // Σ a_re over eligible slots (frozen or not)

  // Round-start snapshots; permanent facilities do not change mid-round.
  std::vector<double> dist1(k);
  std::vector<FacilityId> fac1(k);
  for (std::size_t slot = 0; slot < k; ++slot) {
    const auto [d, id] = nearest_offering(commodities[slot], loc);
    dist1[slot] = d;
    fac1[slot] = id;
  }
  const auto [dhat, near_large_id] =
      prediction_enabled() && !eligible_demand.empty()
          ? nearest_large(loc, eligible_demand)
          : std::pair<double, FacilityId>{kInfiniteDistance,
                                          kInvalidFacility};

  // Per-slot singleton cost rows and bid rows — raw pointers into the
  // cost-row arena, the bid arena (incremental) or the reusable
  // reference-mode scratch. Every cost row is ensured before any pointer
  // is taken: activation can grow the arena and move earlier rows.
  if (ref_bid_scratch_.size() < k) ref_bid_scratch_.resize(k);
  for (std::size_t slot = 0; slot < k; ++slot)
    ensure_singleton_cost_row(commodities[slot]);
  std::vector<const double*> f_small(k);
  std::vector<const double*> bids_small(k);
  for (std::size_t slot = 0; slot < k; ++slot) {
    const CommodityId e = commodities[slot];
    f_small[slot] = cost_rows_.row(e);
    if (options_.bid_mode == PdOptions::BidMode::kIncremental &&
        bids_.active(e)) {
      bids_small[slot] = bids_.row(e);
    } else {
      small_bid_row(e, ref_bid_scratch_[slot]);
      bids_small[slot] = ref_bid_scratch_[slot].data();
    }
  }

  CommoditySet large_cfg(num_commodities_);
  const double* f_large = nullptr;
  const double* bids_large = nullptr;
  const bool can_open_large =
      prediction_enabled() && unserved_eligible > 0 &&
      !(large_cfg = current_large_config()).empty();
  if (can_open_large) {
    f_large = large_cost_row(large_cfg);
    if (options_.bid_mode == PdOptions::BidMode::kIncremental) {
      bids_large = bids_.row(large_row_);
    } else {
      large_bid_row(large_bid_scratch_);
      bids_large = large_bid_scratch_.data();
    }
  }

  // Bid rows and permanent facilities do not change mid-round, so one
  // distance row serves every event scan of the round. On the uncached
  // oracle path the row is copied into owned scratch: the oracle's
  // fallback buffer is single-slot, and a pointer held across the whole
  // event loop must not be silently repointed by a future row() call.
  // Counters still tick once per sweep.
  const double* dist_loc;
  if (dist_->cached()) {
    dist_loc = dist_->row(loc);
  } else {
    const double* fallback = dist_->row(loc);
    dist_loc_scratch_.assign(fallback, fallback + num_points_);
    dist_loc = dist_loc_scratch_.data();
  }

  // Round outcome.
  std::vector<PointId> temp_point(k, kInvalidPoint);  // constraint (3)
  std::vector<bool> via_existing(k, false);           // constraint (1)
  std::vector<bool> via_large(k, false);              // constraints (2)/(4)
  FacilityId large_serving = kInvalidFacility;        // existing (2)
  PointId new_large_point = kInvalidPoint;            // new (4)
  bool opened_large = false;

  // Decision-time captures for the trace sink (bid rows are mutated by
  // archive_request after the round, so the values must be taken when the
  // constraint fires, not at commit). Allocated only while tracing.
  const bool tracing = obs::tracing();
  std::vector<double> traced_bid_mass;
  std::vector<double> traced_tightness;
  double traced_large_bid_mass = 0.0;
  double traced_large_tightness = 0.0;
  if (tracing) {
    traced_bid_mass.assign(k, 0.0);
    traced_tightness.assign(k, 0.0);
  }

  while (unserved > 0) {
    // Find the next tightness event. Priority on ties: (2) and (4) end the
    // round and subsume any simultaneous (1)/(3) event (the pseudocode
    // processes lines 3-5 then 6-9 in the same instant, with 6-9
    // overriding), then (1) before (3), smaller slot, smaller point.
    struct Event {
      double delta = std::numeric_limits<double>::infinity();
      int priority = 99;  // 0:(2) 1:(4) 2:(1) 3:(3)
      std::size_t slot = 0;
      PointId point = kInvalidPoint;
    };
    Event best;
    auto consider = [&](double delta, int priority, std::size_t slot,
                        PointId point) {
      if (delta < best.delta ||
          (delta == best.delta &&
           (priority < best.priority ||
            (priority == best.priority &&
             (slot < best.slot ||
              (slot == best.slot && point < best.point)))))) {
        best = Event{delta, priority, slot, point};
      }
    };

    // Constraint (2): the eligible investment reaches d(F̂, r).
    if (prediction_enabled() && unserved_eligible > 0 &&
        std::isfinite(dhat))
      consider(positive_part(dhat - sum_eligible) /
                   static_cast<double>(unserved_eligible),
               0, 0, kInvalidPoint);

    // Constraint (4): joint investment pays for a new large facility at m.
    if (can_open_large && unserved_eligible > 0) {
      OMFLP_PERF_ADD(bids_evaluated, num_points_);
      OMFLP_PERF_ADD(distance_lookups, num_points_);
      const kernel::RowEvent event = kernel::min_tightness_over_row(
          dist_loc, f_large, bids_large, sum_eligible,
          static_cast<double>(unserved_eligible), num_points_);
      consider(event.delta, 1, 0, static_cast<PointId>(event.index));
    }

    for (std::size_t slot = 0; slot < k; ++slot) {
      if (served[slot]) continue;
      // Constraint (1): a_re reaches the nearest facility offering e.
      if (std::isfinite(dist1[slot]))
        consider(positive_part(dist1[slot] - a[slot]), 2, slot,
                 kInvalidPoint);
      // Constraint (3): investment pays for a small facility {e} at m.
      OMFLP_PERF_ADD(bids_evaluated, num_points_);
      OMFLP_PERF_ADD(distance_lookups, num_points_);
      const kernel::RowEvent event = kernel::min_tightness_over_row(
          dist_loc, f_small[slot], bids_small[slot], a[slot], 1.0,
          num_points_);
      consider(event.delta, 3, slot, static_cast<PointId>(event.index));
    }

    OMFLP_CHECK(std::isfinite(best.delta),
                "PdOmflp: no constraint can become tight — facility costs "
                "must be finite");

    // Advance the duals of all unserved commodities by the event time.
    if (best.delta > 0.0) {
      for (std::size_t slot = 0; slot < k; ++slot) {
        if (served[slot]) continue;
        a[slot] += best.delta;
        if (eligible[slot]) sum_eligible += best.delta;
      }
      raised += best.delta;
    }

    // (2)/(4): every eligible commodity of s_r is (re)assigned to the
    // large facility; temporary facilities of reassigned slots are
    // discarded (Algorithm 1 lines 7-9). Excluded (heavy) slots continue
    // through constraints (1)/(3).
    auto serve_eligible_by_large = [&] {
      for (std::size_t slot = 0; slot < k; ++slot) {
        if (!eligible[slot]) continue;
        if (!served[slot]) --unserved;
        served[slot] = true;
        via_large[slot] = true;
        via_existing[slot] = false;
        temp_point[slot] = kInvalidPoint;
      }
      unserved_eligible = 0;
    };

    switch (best.priority) {
      case 0: {  // (2) — connect to the nearest existing large facility.
        large_serving = near_large_id;
        serve_eligible_by_large();
        if (options_.record_trace)
          trace_.push_back(PdTraceEvent{request_id, 2, kInvalidCommodity,
                                        ledger.facility(large_serving)
                                            .location,
                                        raised});
        break;
      }
      case 1: {  // (4) — open a new large facility at best.point.
        opened_large = true;
        new_large_point = best.point;
        if (tracing) {
          traced_large_bid_mass = bids_large[best.point];
          traced_large_tightness = raised;
        }
        serve_eligible_by_large();
        if (options_.record_trace)
          trace_.push_back(PdTraceEvent{request_id, 4, kInvalidCommodity,
                                        best.point, raised});
        break;
      }
      case 2: {  // (1) — serve e by the nearest existing facility.
        served[best.slot] = true;
        via_existing[best.slot] = true;
        --unserved;
        if (eligible[best.slot]) --unserved_eligible;
        if (options_.record_trace)
          trace_.push_back(PdTraceEvent{request_id, 1,
                                        commodities[best.slot],
                                        ledger.facility(fac1[best.slot])
                                            .location,
                                        raised});
        break;
      }
      case 3: {  // (3) — temporarily open a small facility {e} at m.
        served[best.slot] = true;
        temp_point[best.slot] = best.point;
        if (tracing) {
          traced_bid_mass[best.slot] = bids_small[best.slot][best.point];
          traced_tightness[best.slot] = raised;
        }
        --unserved;
        if (eligible[best.slot]) --unserved_eligible;
        if (options_.record_trace)
          trace_.push_back(PdTraceEvent{request_id, 3,
                                        commodities[best.slot], best.point,
                                        raised});
        break;
      }
      default:
        OMFLP_CHECK(false, "PdOmflp: invalid event");
    }
  }

  // Commit the round's decisions to the ledger; temporary facilities are
  // discarded when the round ended through (2)/(4) (lines 8-9 of
  // Algorithm 1), otherwise they become permanent (line 10).
  struct NewFacility {
    PointId point;
    CommoditySet config;
    FacilityId id;
    bool is_large;
  };
  std::vector<NewFacility> committed;

  // facility_open trace events, emitted at commit with the decision-time
  // bid/tightness captures. Contributor lists are rebuilt from the
  // archived state: each past request's clipped bid at the opening point
  // plus the current request's own term — the left-hand side of the
  // constraint that went tight.
  const auto emit_small_open = [&](std::size_t slot, FacilityId id) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFacilityOpen;
    ev.request = request_id;
    ev.constraint = 3;
    ev.commodity = commodities[slot];
    ev.facility = id;
    ev.point = temp_point[slot];
    ev.config_size = 1;
    ev.cost = ledger.facility(id).open_cost;
    ev.bid_mass = traced_bid_mass[slot];
    ev.tightness = traced_tightness[slot];
    std::vector<TraceContributor> contribs;
    const double* dist_m = dist_->row(temp_point[slot]);
    for (const auto& [j, pslot] : by_commodity_[commodities[slot]]) {
      const PastRequest& pr = past_[j];
      const double v = std::min(pr.duals[pslot], pr.small_dist[pslot]);
      if (v <= 0.0) continue;
      const double amount = positive_part(v - dist_m[pr.location]);
      if (amount > 0.0) contribs.push_back(TraceContributor{j, amount});
    }
    const double own = positive_part(a[slot] - dist_loc[temp_point[slot]]);
    if (own > 0.0)
      contribs.push_back(TraceContributor{request_id, own});
    set_trace_contributors(ev, std::move(contribs));
    obs::emit(ev);
  };
  const auto emit_large_open = [&](FacilityId id) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFacilityOpen;
    ev.request = request_id;
    ev.constraint = 4;
    ev.facility = id;
    ev.point = new_large_point;
    ev.config_size = large_cfg.count();
    ev.cost = ledger.facility(id).open_cost;
    ev.bid_mass = traced_large_bid_mass;
    ev.tightness = traced_large_tightness;
    std::vector<TraceContributor> contribs;
    const double* dist_m = dist_->row(new_large_point);
    for (std::size_t j = 0; j < past_.size(); ++j) {
      const PastRequest& pr = past_[j];
      const double v = std::min(pr.dual_sum_large, pr.large_dist);
      if (v <= 0.0) continue;
      const double amount = positive_part(v - dist_m[pr.location]);
      if (amount > 0.0) contribs.push_back(TraceContributor{j, amount});
    }
    const double own = positive_part(sum_eligible - dist_loc[new_large_point]);
    if (own > 0.0)
      contribs.push_back(TraceContributor{request_id, own});
    set_trace_contributors(ev, std::move(contribs));
    obs::emit(ev);
  };

  FacilityId large_id = large_serving;
  if (opened_large) {
    large_id = ledger.open_facility(new_large_point, large_cfg);
    committed.push_back(
        NewFacility{new_large_point, large_cfg, large_id, true});
    if (tracing) emit_large_open(large_id);
  }
  for (std::size_t slot = 0; slot < k; ++slot) {
    if (via_large[slot]) {
      OMFLP_CHECK(large_id != kInvalidFacility,
                  "PdOmflp: large assignment without a large facility");
      ledger.assign(commodities[slot], large_id);
    } else if (temp_point[slot] != kInvalidPoint) {
      const CommoditySet single =
          CommoditySet::singleton(num_commodities_, commodities[slot]);
      const FacilityId id = ledger.open_facility(temp_point[slot], single);
      committed.push_back(NewFacility{temp_point[slot], single, id, false});
      if (tracing) emit_small_open(slot, id);
      ledger.assign(commodities[slot], id);
    } else {
      OMFLP_CHECK(via_existing[slot] && fac1[slot] != kInvalidFacility,
                  "PdOmflp: slot finished without an assignment");
      ledger.assign(commodities[slot], fac1[slot]);
    }
  }

  for (const NewFacility& nf : committed)
    integrate_facility(nf.point, nf.config, nf.id, nf.is_large);

  archive_request(request, commodities, a);
}

namespace {

const char* bid_mode_tag(PdOptions::BidMode m) {
  return m == PdOptions::BidMode::kIncremental ? "incremental" : "reference";
}
const char* prediction_tag(PdOptions::Prediction p) {
  return p == PdOptions::Prediction::kOn ? "on" : "off";
}
const char* large_config_tag(PdOptions::LargeConfig c) {
  return c == PdOptions::LargeConfig::kFullS ? "full-s" : "seen-union";
}
const char* deletion_tag(PdOptions::DeletionPolicy d) {
  return d == PdOptions::DeletionPolicy::kRollback ? "rollback" : "frozen";
}

}  // namespace

void PdOmflp::serialize_state(CkptWriter& writer) const {
  // Options guard: a checkpoint only restores into the same variant.
  writer.line("pd-options")
      .tok(bid_mode_tag(options_.bid_mode))
      .tok(prediction_tag(options_.prediction))
      .tok(large_config_tag(options_.large_config))
      .tok(deletion_tag(options_.deletion_policy))
      .set(excluded_);
  writer.line("offering-index").u(offering_.size());
  for (const auto& row : offering_) {
    writer.line("offering").u(row.size());
    for (const OpenRecord& f : row) writer.u(f.point).u(f.id);
  }
  writer.line("larges").u(larges_.size());
  for (const LargeRecord& f : larges_)
    writer.line("large").u(f.point).u(f.id).set(f.config);
  writer.line("seen").set(seen_);
  writer.line("past").u(past_.size());
  for (const PastRequest& pr : past_) {
    writer.line("past-request")
        .u(pr.location)
        .u(pr.commodities.size())
        .d(pr.dual_sum_large)
        .d(pr.large_dist)
        .b(pr.departed);
    writer.line("past-commodities");
    for (const CommodityId e : pr.commodities) writer.u(e);
    writer.line("past-duals");
    for (const double a : pr.duals) writer.d(a);
    writer.line("past-small-dist");
    for (const double d : pr.small_dist) writer.d(d);
  }
  // Incremental bid rows, bitwise, in canonical (row id) order — slot
  // order inside the arena is an activation-history artifact that never
  // affects numerics.
  std::vector<std::size_t> active_rows;
  for (std::size_t r = 0; r < bids_.num_rows(); ++r)
    if (bids_.active(r)) active_rows.push_back(r);
  writer.line("bid-rows").u(active_rows.size()).u(bids_.row_length());
  for (const std::size_t r : active_rows) {
    writer.line("bid-row").u(r);
    const double* row = bids_.row(r);
    for (std::size_t m = 0; m < bids_.row_length(); ++m) writer.d(row[m]);
  }
  writer.line("dual-total").d(total_dual_);
  writer.line("dual-records").u(dual_records_.size());
  for (const PdDualRecord& rec : dual_records_) {
    writer.line("dual-record").u(rec.location).u(rec.commodities.size());
    for (std::size_t i = 0; i < rec.commodities.size(); ++i)
      writer.u(rec.commodities[i]).d(rec.duals[i]);
  }
  writer.line("trace").u(trace_.size());
  for (const PdTraceEvent& ev : trace_) {
    writer.line("trace-event")
        .u(ev.request)
        .u(static_cast<std::uint64_t>(ev.constraint))
        .u(ev.commodity)
        .u(ev.point)
        .d(ev.raised);
  }
}

void PdOmflp::restore_state(CkptReader& reader) {
  reader.expect("pd-options");
  if (reader.tok() != bid_mode_tag(options_.bid_mode) ||
      reader.tok() != prediction_tag(options_.prediction) ||
      reader.tok() != large_config_tag(options_.large_config) ||
      reader.tok() != deletion_tag(options_.deletion_policy))
    reader.fail("checkpoint was written by a different PD-OMFLP variant");
  if (!(reader.set() == excluded_))
    reader.fail("checkpoint excluded-commodity set mismatch");
  reader.expect("offering-index");
  if (reader.u() != offering_.size())
    reader.fail("offering index universe mismatch");
  for (auto& row : offering_) {
    reader.expect("offering");
    const std::uint64_t n = reader.u();
    row.reserve(capped_reserve(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      OpenRecord f;
      f.point = static_cast<PointId>(reader.u());
      f.id = static_cast<FacilityId>(reader.u());
      row.push_back(f);
    }
  }
  reader.expect("larges");
  const std::uint64_t num_larges = reader.u();
  larges_.reserve(capped_reserve(num_larges));
  for (std::uint64_t i = 0; i < num_larges; ++i) {
    reader.expect("large");
    LargeRecord f;
    f.point = static_cast<PointId>(reader.u());
    f.id = static_cast<FacilityId>(reader.u());
    f.config = reader.set();
    if (f.config.universe_size() != num_commodities_)
      reader.fail("large facility config universe mismatch");
    larges_.push_back(std::move(f));
  }
  reader.expect("seen");
  seen_ = reader.set();
  if (seen_.universe_size() != num_commodities_)
    reader.fail("seen-union universe mismatch");
  reader.expect("past");
  const std::uint64_t num_past = reader.u();
  past_.reserve(capped_reserve(num_past));
  for (std::uint64_t j = 0; j < num_past; ++j) {
    reader.expect("past-request");
    PastRequest pr;
    pr.location = static_cast<PointId>(reader.u());
    const std::uint64_t slots = reader.u();
    pr.dual_sum_large = reader.d();
    pr.large_dist = reader.d();
    pr.departed = reader.b();
    pr.commodities.reserve(capped_reserve(slots));
    reader.expect("past-commodities");
    for (std::uint64_t i = 0; i < slots; ++i) {
      const auto e = static_cast<CommodityId>(reader.u());
      if (e >= num_commodities_) reader.fail("past commodity out of range");
      pr.commodities.push_back(e);
    }
    pr.duals.reserve(capped_reserve(slots));
    reader.expect("past-duals");
    for (std::uint64_t i = 0; i < slots; ++i) pr.duals.push_back(reader.d());
    pr.small_dist.reserve(capped_reserve(slots));
    reader.expect("past-small-dist");
    for (std::uint64_t i = 0; i < slots; ++i)
      pr.small_dist.push_back(reader.d());
    // Rebuild the per-commodity index (a pure function of past_).
    for (std::size_t slot = 0; slot < pr.commodities.size(); ++slot)
      by_commodity_[pr.commodities[slot]].emplace_back(
          static_cast<std::size_t>(j), static_cast<std::uint32_t>(slot));
    past_.push_back(std::move(pr));
  }
  reader.expect("bid-rows");
  const std::uint64_t num_bid_rows = reader.u();
  if (reader.u() != bids_.row_length())
    reader.fail("bid row length differs from the metric");
  for (std::uint64_t i = 0; i < num_bid_rows; ++i) {
    reader.expect("bid-row");
    const std::uint64_t r = reader.u();
    if (r >= bids_.num_rows()) reader.fail("bid row id out of range");
    double* row = bids_.active(static_cast<std::size_t>(r))
                      ? bids_.row(static_cast<std::size_t>(r))
                      : bids_.activate(static_cast<std::size_t>(r));
    for (std::size_t m = 0; m < bids_.row_length(); ++m) row[m] = reader.d();
  }
  reader.expect("dual-total");
  total_dual_ = reader.d();
  reader.expect("dual-records");
  const std::uint64_t num_dual_records = reader.u();
  dual_records_.reserve(capped_reserve(num_dual_records));
  for (std::uint64_t i = 0; i < num_dual_records; ++i) {
    reader.expect("dual-record");
    PdDualRecord rec;
    rec.location = static_cast<PointId>(reader.u());
    const std::uint64_t slots = reader.u();
    rec.commodities.reserve(capped_reserve(slots));
    rec.duals.reserve(capped_reserve(slots));
    for (std::uint64_t k = 0; k < slots; ++k) {
      rec.commodities.push_back(static_cast<CommodityId>(reader.u()));
      rec.duals.push_back(reader.d());
    }
    dual_records_.push_back(std::move(rec));
  }
  reader.expect("trace");
  const std::uint64_t num_trace = reader.u();
  trace_.reserve(capped_reserve(num_trace));
  for (std::uint64_t i = 0; i < num_trace; ++i) {
    reader.expect("trace-event");
    PdTraceEvent ev;
    ev.request = reader.u();
    ev.constraint = static_cast<int>(reader.u());
    ev.commodity = static_cast<CommodityId>(reader.u());
    ev.point = static_cast<PointId>(reader.u());
    ev.raised = reader.d();
    trace_.push_back(ev);
  }
}

}  // namespace omflp
