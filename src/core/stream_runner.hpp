// StreamSession / run_stream — the dynamic counterpart of run_online:
// drives an OnlineAlgorithm over an EventSource's arrival/departure/lease
// timeline into a SolutionLedger with active-interval accounting.
//
// Processing model (the timeline semantics of instance/event_stream.hpp):
// events are pulled from the source in batches of `batch_size` — the only
// buffering between a disk-backed trace and the algorithm — and for each
// event index t the runner first fires due lease expiries (arrival + lease
// <= t, ascending arrival id), then processes the event:
//   * arrival   — begin_request / serve / finish_request, exactly like
//                 run_online, plus lease bookkeeping;
//   * departure — ledger.retire_request (retroactive cost re-accounting)
//                 followed by the algorithm's depart() hook (bid rollback
//                 for PD/Fotakis, the frozen no-op otherwise).
// After each batch, retired records are compacted away (opt-out via
// `compact`), so resident *ledger* state is O(active set + batch), not
// O(arrivals) — peak_resident_records in the stats is the measured
// high-water mark. (The algorithm's own state is outside the runner's
// control: greedy/RAND hold only facilities, PD archives every
// arrival's duals.) With `verify` set, a StreamVerifier shadows the run
// and checks every record before it can be compacted.
//
// StreamSession is the resumable core: one step_batch() call pulls and
// processes exactly one batch, so a driver may interleave many sessions —
// the sharded multi-tenant engine (engine/sharded_engine.hpp) advances one
// batch per tenant per global round. run_stream() is the single-tenant
// convenience wrapper: construct, drain, finish.
//
// Determinism: the result is a pure function of the event sequence and
// the algorithm (kernel chunking keeps it bit-identical across thread
// counts, as for static runs), and — because a session owns all of its
// mutable state — independent of how step_batch() calls are interleaved
// with other sessions.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "core/online_algorithm.hpp"
#include "instance/capacity.hpp"
#include "instance/event_stream.hpp"
#include "solution/verifier.hpp"
#include "support/assert.hpp"

namespace omflp {

struct StreamRunOptions {
  ConnectionChargePolicy policy = ConnectionChargePolicy::kPerFacility;
  /// Events pulled from the source per batch (and compaction cadence).
  std::size_t batch_size = 8192;
  /// Drop all-retired record prefixes after each batch (bounded memory).
  bool compact = true;
  /// Shadow the run with an incremental StreamVerifier; the first
  /// violation is reported in StreamRunResult::violation.
  bool verify = false;
  /// Per-point facility capacities for the session's ledger (and the
  /// shadow verifier). Null falls back to the source's own capacities
  /// (EventSource::capacities()); both null keeps the run uncapacitated.
  CapacityMap capacities;
  /// What the ledger does with an assignment to a full facility.
  OverflowPolicy overflow = OverflowPolicy::kReassign;
};

struct StreamRunResult {
  explicit StreamRunResult(SolutionLedger result_ledger)
      : ledger(std::move(result_ledger)) {}

  SolutionLedger ledger;

  std::uint64_t events = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;       // explicit departure events
  std::uint64_t lease_expiries = 0;   // retirements fired by leases
  /// High-water mark of simultaneously active requests.
  std::size_t peak_active = 0;
  /// High-water mark of resident ledger records (the bounded-memory
  /// evidence: stays near peak_active + batch_size when compacting).
  std::size_t peak_resident_records = 0;
  /// Wall time spent inside step_batch() (excluding source construction
  /// and any scheduling gaps between batches).
  double run_ns = 0.0;
  /// First verification failure (only when options.verify).
  std::optional<VerificationError> violation;

  double events_per_sec() const noexcept {
    return run_ns > 0.0 ? static_cast<double>(events) * 1e9 / run_ns : 0.0;
  }
};

/// A resumable stream run: the state of one (algorithm, source) pair
/// between batches. The constructor resets the algorithm; step_batch()
/// advances one batch; finish() closes the books once the source is
/// exhausted. Throws std::invalid_argument on a malformed event
/// (departure of an unknown / inactive arrival, arrival outside the
/// metric) — the same conditions EventStream::validate rejects.
///
/// The algorithm and source are borrowed and must outlive the session;
/// neither may be shared with another concurrently-stepped session.
class StreamSession {
 public:
  StreamSession(OnlineAlgorithm& algorithm, EventSource& source,
                const StreamRunOptions& options = {});

  /// Restoring constructor (instance/checkpoint_io.hpp): rebuilds the
  /// session from a checkpoint() snapshot. The algorithm must be a fresh
  /// instance constructed exactly as for the original run (same options
  /// and seed) — it is reset() and handed its serialized state — and the
  /// source a fresh source of the *same* stream, which is fast-forwarded
  /// to the snapshot's clock. options must match the snapshot (verify
  /// flag, connection-charge policy and overflow policy are guarded).
  /// The restored session continues bitwise identically to one that
  /// never stopped.
  StreamSession(OnlineAlgorithm& algorithm, EventSource& source,
                const StreamRunOptions& options, CkptReader& reader);

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Pulls and processes one batch (plus the post-batch compaction);
  /// returns the number of events processed — 0 means the source is
  /// exhausted and the session is ready to finish(). Wall time accrues
  /// into the result's run_ns.
  std::size_t step_batch();

  /// True once step_batch() has observed the end of the source.
  bool exhausted() const noexcept { return exhausted_; }

  /// Events processed so far (the stream clock).
  std::uint64_t events_processed() const noexcept { return clock_; }

  const SolutionLedger& ledger() const {
    // finish() moves the result out; reading the husk would silently
    // return a moved-from ledger.
    OMFLP_REQUIRE(!finished_, "StreamSession: ledger after finish");
    return result_.ledger;
  }

  /// Final totals (and the verifier's closing check, when enabled). The
  /// session is spent afterwards; requires exhausted() and may be called
  /// once.
  StreamRunResult finish();

  /// Serializes the complete between-batches state — the stream clock,
  /// active set, pending lease expiries, result statistics, verifier,
  /// ledger and the algorithm's own state — in canonical form (a
  /// checkpoint of a restored session is byte-identical to the one it
  /// was restored from). Call between step_batch() calls, before
  /// finish(). run_ns is serialized for continuity of the stats but is
  /// wall time, the one field excluded from bitwise comparisons.
  void checkpoint(CkptWriter& writer) const;

 private:
  void retire(RequestId id, std::uint64_t event_index);
  void process_event(const StreamEvent& event);

  OnlineAlgorithm& algorithm_;
  EventSource& source_;
  StreamRunOptions options_;

  StreamRunResult result_;
  std::optional<StreamVerifier> verifier_;

  // Pending lease expiries, min-ordered on (deadline, arrival id) so
  // simultaneous expiries fire in arrival order. Entries for arrivals
  // that were explicitly departed first are skipped lazily.
  using Expiry = std::pair<std::uint64_t, RequestId>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
      expiries_;
  std::vector<bool> active_;  // by arrival id
  std::size_t num_active_ = 0;

  std::vector<StreamEvent> batch_;
  std::uint64_t clock_ = 0;
  bool exhausted_ = false;
  bool finished_ = false;
};

/// Drive `source` through `algorithm` to completion (construct a session,
/// drain it, finish).
StreamRunResult run_stream(OnlineAlgorithm& algorithm, EventSource& source,
                           const StreamRunOptions& options = {});

/// Convenience overload for materialized streams.
StreamRunResult run_stream(OnlineAlgorithm& algorithm,
                           const EventStream& stream,
                           const StreamRunOptions& options = {});

}  // namespace omflp
