// run_stream — the dynamic counterpart of run_online: drives an
// OnlineAlgorithm over an EventSource's arrival/departure/lease timeline
// into a SolutionLedger with active-interval accounting.
//
// Processing model (the timeline semantics of instance/event_stream.hpp):
// events are pulled from the source in batches of `batch_size` — the only
// buffering between a disk-backed trace and the algorithm — and for each
// event index t the runner first fires due lease expiries (arrival + lease
// <= t, ascending arrival id), then processes the event:
//   * arrival   — begin_request / serve / finish_request, exactly like
//                 run_online, plus lease bookkeeping;
//   * departure — ledger.retire_request (retroactive cost re-accounting)
//                 followed by the algorithm's depart() hook (bid rollback
//                 for PD/Fotakis, the frozen no-op otherwise).
// After each batch, retired records are compacted away (opt-out via
// `compact`), so resident *ledger* state is O(active set + batch), not
// O(arrivals) — peak_resident_records in the stats is the measured
// high-water mark. (The algorithm's own state is outside the runner's
// control: greedy/RAND hold only facilities, PD archives every
// arrival's duals.) With `verify` set, a StreamVerifier shadows the run
// and checks every record before it can be compacted.
//
// Determinism: the result is a pure function of the event sequence and
// the algorithm (kernel chunking keeps it bit-identical across thread
// counts, as for static runs).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "core/online_algorithm.hpp"
#include "instance/event_stream.hpp"
#include "solution/verifier.hpp"

namespace omflp {

struct StreamRunOptions {
  ConnectionChargePolicy policy = ConnectionChargePolicy::kPerFacility;
  /// Events pulled from the source per batch (and compaction cadence).
  std::size_t batch_size = 8192;
  /// Drop all-retired record prefixes after each batch (bounded memory).
  bool compact = true;
  /// Shadow the run with an incremental StreamVerifier; the first
  /// violation is reported in StreamRunResult::violation.
  bool verify = false;
};

struct StreamRunResult {
  explicit StreamRunResult(SolutionLedger result_ledger)
      : ledger(std::move(result_ledger)) {}

  SolutionLedger ledger;

  std::uint64_t events = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;       // explicit departure events
  std::uint64_t lease_expiries = 0;   // retirements fired by leases
  /// High-water mark of simultaneously active requests.
  std::size_t peak_active = 0;
  /// High-water mark of resident ledger records (the bounded-memory
  /// evidence: stays near peak_active + batch_size when compacting).
  std::size_t peak_resident_records = 0;
  /// Wall time of the processing loop (excluding source construction).
  double run_ns = 0.0;
  /// First verification failure (only when options.verify).
  std::optional<VerificationError> violation;

  double events_per_sec() const noexcept {
    return run_ns > 0.0 ? static_cast<double>(events) * 1e9 / run_ns : 0.0;
  }
};

/// Drive `source` through `algorithm`. Throws std::invalid_argument on a
/// malformed event (departure of an unknown / inactive arrival, arrival
/// outside the metric) — the same conditions EventStream::validate
/// rejects.
StreamRunResult run_stream(OnlineAlgorithm& algorithm, EventSource& source,
                           const StreamRunOptions& options = {});

/// Convenience overload for materialized streams.
StreamRunResult run_stream(OnlineAlgorithm& algorithm,
                           const EventStream& stream,
                           const StreamRunOptions& options = {});

}  // namespace omflp
