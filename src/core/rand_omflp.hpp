// RAND-OMFLP — the paper's randomized algorithm (Algorithm 2, Section 4),
// O(√|S|·log n/log log n)-competitive in expectation.
//
// Meyerson-style: opening costs per configuration are rounded down to
// powers of two ("cost classes", see cost/cost_classes.hpp). When request
// r with demand s_r arrives, the algorithm computes
//   X(r,e) = min{ d(F(e),r), min_i { C^{e}_i + d(C^{e}_i, r) } }
//   X(r)   = Σ_{e∈s_r} X(r,e)
//   Z(r)   = min{ d(F̂,r),  min_i { C^{S}_i + d(C^{S}_i, r) } }
// (the cheapest all-small respectively single-large way to serve r), and
// flips one coin per (configuration, class):
//   small {e}, class i:  Pr = (D^e_{i−1} − D^e_i)/C^{e}_i · X(r,e)/X(r)
//   large  S,  class i:  Pr = (D^S_{i−1} − D^S_i)/C^{S}_i
// building the facility at the nearest point of class ≤ i on success.
//
// Interpretation note (documented deviation): the class distances that
// enter the probabilities are capped at the request's budget,
//   D_i := min( min{Z(r),X(r)}, d(C_i, r) ),  D_0 := min{Z(r),X(r)},
// following the paper's "portion proportional to the improvement for r"
// and Meyerson's original charging scheme. With the cap, the expected
// construction cost charged per request telescopes to at most
// min{Z(r),X(r)} = expected assignment cost — exactly the balance
// Lemma 20 claims. Reading d(C_i, r) as the raw site distance instead
// would flip class-i coins with a state-independent probability on every
// request and over-build without bound on non-uniform instances.
//
// Completion rule (documented deviation): coin flips alone cannot
// guarantee coverage (the very first request might lose every flip), so
// after the draws any still-uncoverable commodity is served by
// deterministically opening the cheapest covering option (the argmin of
// the X / Z expressions, whichever side is cheaper). This is the standard
// de-randomized completion; it only reduces cost relative to re-flipping.
//
// Finally r connects to whichever is cheaper *after* the builds: the
// per-commodity nearest facilities (Σ_e d(F(e),r), shared facilities
// deduplicated by the ledger) or the single nearest large facility.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "cost/cost_classes.hpp"
#include "metric/distance_oracle.hpp"
#include "support/rng.hpp"

namespace omflp {

struct RandOptions {
  std::uint64_t seed = 1;
  /// Record per-request accounting (expected vs realized costs) for the
  /// Lemma 20 balance tests.
  bool record_accounting = false;
};

/// Per-request accounting exported for analysis when record_accounting.
struct RandAccounting {
  double budget = 0.0;         // min{X(r), Z(r)}
  double x_total = 0.0;        // X(r)
  double z_total = 0.0;        // Z(r)
  double expected_small = 0.0; // Σ p_i · C_i over small coins
  double expected_large = 0.0; // Σ p_i · C_i over large coins
  double realized_open = 0.0;  // opening cost actually paid this request
  double realized_connect = 0.0;
  bool completion_used = false;
};

class RandOmflp final : public OnlineAlgorithm {
 public:
  explicit RandOmflp(RandOptions options = {});

  std::string name() const override;
  void reset(const ProblemContext& context) override;
  void serve(const Request& request, SolutionLedger& ledger) override;
  // Deletion policy on dynamic streams: frozen (the inherited no-op
  // depart). RAND-OMFLP keeps no per-request potentials — its state is
  // the opened facilities and the cost classes, both of which survive a
  // departure unchanged — so ledger-level active-interval re-accounting
  // is the whole policy.

  const std::vector<RandAccounting>& accounting() const noexcept {
    return accounting_;
  }

  /// Checkpoint: the opened facilities plus the full RNG state, so the
  /// restored coin-flip sequence continues bitwise. The class indexes
  /// are pure functions of the cost model and rebuilt lazily; the
  /// accounting log is serialized only when record_accounting is on.
  void serialize_state(CkptWriter& writer) const override;
  void restore_state(CkptReader& reader) override;

 private:
  RandOptions options_;
  Rng rng_;
  CostModelPtr cost_;
  MetricPtr metric_;
  /// Shared with the lazily-built class indexes so the dense distance
  /// matrix (and its fallback row cache) is materialized once per run.
  std::shared_ptr<DistanceOracle> dist_;
  CommodityId num_commodities_ = 0;
  std::size_t num_points_ = 0;

  struct OpenRecord {
    PointId point = 0;
    FacilityId id = kInvalidFacility;
  };
  std::vector<std::vector<OpenRecord>> offering_;  // per commodity
  std::vector<OpenRecord> larges_;

  /// Lazily-built class indexes: index 0..|S|-1 for singletons, the last
  /// slot for the full configuration S.
  std::vector<std::unique_ptr<CostClassIndex>> class_index_;
  const CostClassIndex& singleton_classes(CommodityId e);
  const CostClassIndex& full_classes();

  std::vector<RandAccounting> accounting_;

  std::pair<double, FacilityId> nearest_offering(CommodityId e,
                                                 PointId p) const;
  std::pair<double, FacilityId> nearest_large(PointId p) const;

  /// `coin_p` is the Bernoulli probability that opened the facility (1.0
  /// on the deterministic completion path); it lands in the trace event's
  /// tightness field.
  FacilityId open_small(PointId m, CommodityId e, SolutionLedger& ledger,
                        double coin_p);
  FacilityId open_large(PointId m, SolutionLedger& ledger, double coin_p);
};

}  // namespace omflp
