// BidPlane — a contiguous, 64-byte-aligned arena of per-row bid sums.
//
// PD-style algorithms keep one |M|-length row of accumulated bids per
// commodity (plus one for the large side). Storing each row in its own
// std::vector scatters them across the heap and pays a pointer chase per
// access; BidPlane packs every *activated* row into one arena, row-major,
// with rows padded to a 64-byte stride so each starts on a cache-line
// boundary and vectorized kernels never straddle rows.
//
// Rows are activated lazily: a plane over |E| commodities whose workload
// only ever touches a handful of them allocates storage for exactly those
// (the activated_rows() stat makes this observable), not O(|E|·|M|).
// Activation order determines arena placement; lookups go through a
// row -> slot index so callers keep addressing rows by their natural id.
//
// Pointer validity: activate() may grow the arena and therefore
// invalidates previously returned row pointers. row() pointers are stable
// until the next activate()/reset(). Hot loops fetch their row pointer
// once per row operation, after any activations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace omflp::kernel {

class BidPlane {
 public:
  BidPlane() = default;

  /// Re-shapes the plane to `num_rows` rows of `row_length` doubles each
  /// and deactivates everything. Arena storage is released.
  void reset(std::size_t num_rows, std::size_t row_length);

  std::size_t num_rows() const noexcept { return slot_of_row_.size(); }
  std::size_t row_length() const noexcept { return row_length_; }
  /// Doubles between consecutive row starts (row_length rounded up to a
  /// multiple of 8; the padding lanes are zero and stay zero).
  std::size_t stride() const noexcept { return stride_; }

  /// How many rows have been activated since the last reset() — the
  /// memory footprint stat for sparse-commodity workloads.
  std::size_t activated_rows() const noexcept { return active_rows_; }

  bool active(std::size_t r) const noexcept {
    return slot_of_row_[r] != kInactive;
  }

  /// Returns row r's storage, zero-filling it on first activation.
  /// Idempotent. Invalidates pointers returned by earlier calls when the
  /// arena grows.
  double* activate(std::size_t r);

  /// Row r's storage; r must be active.
  double* row(std::size_t r) noexcept {
    return arena_ + static_cast<std::size_t>(slot_of_row_[r]) * stride_;
  }
  const double* row(std::size_t r) const noexcept {
    return arena_ + static_cast<std::size_t>(slot_of_row_[r]) * stride_;
  }

 private:
  static constexpr std::uint32_t kInactive = 0xffffffffu;

  void grow(std::size_t min_slots);

  std::size_t row_length_ = 0;
  std::size_t stride_ = 0;
  std::size_t active_rows_ = 0;
  std::size_t slot_capacity_ = 0;
  /// row id -> arena slot, kInactive when not yet activated.
  // omflp-lint: allow(kernel-purity) arena bookkeeping, grown only in grow() (setup)
  std::vector<std::uint32_t> slot_of_row_;
  /// Raw storage, over-allocated so arena_ can be 64-byte aligned.
  std::unique_ptr<double[]> storage_;
  double* arena_ = nullptr;
};

}  // namespace omflp::kernel
