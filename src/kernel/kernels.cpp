#include "kernel/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "support/parallel.hpp"
#include "support/parse.hpp"

namespace omflp::kernel {

namespace {

// Fixed work-unit size for the parallel split. Chunks — not threads —
// are the units partial results are computed and combined over, which is
// what makes every kernel bit-identical across thread counts.
constexpr std::size_t kChunk = 8192;

// Block size for the serial early-exit scan in min_tightness_over_row:
// long enough to amortize the per-block check, short enough that a tight
// point near the front of the row is found quickly.
constexpr std::size_t kBlock = 512;

inline double positive_part(double x) noexcept { return x > 0.0 ? x : 0.0; }

// positive_part clamps NaN to 0, which is right for the accumulating
// kernels but disastrous in the event scan: a NaN bid or distance would
// collapse to a zero delta and report spurious tightness. This variant
// propagates NaN (x < 0 is false for NaN) so corrupted elements are
// skipped by the strict-< comparison instead; for every non-NaN input it
// is bit-identical to positive_part.
inline double positive_part_nanprop(double x) noexcept {
  return x < 0.0 ? 0.0 : x;
}

std::size_t initial_threshold() noexcept {
  // Strict parse: "123abc" and negative text are ignored (with a stderr
  // warning) instead of being silently truncated or wrapped.
  if (const auto v = env_u64("OMFLP_KERNEL_THRESHOLD"))
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(*v, std::numeric_limits<std::size_t>::max()));
  return kDefaultParallelThreshold;
}

std::atomic<std::size_t>& threshold_slot() noexcept {
  static std::atomic<std::size_t> slot{initial_threshold()};
  return slot;
}

inline bool use_parallel(std::size_t n) noexcept {
  return n >= threshold_slot().load(std::memory_order_relaxed);
}

inline std::size_t num_chunks(std::size_t n) noexcept {
  return (n + kChunk - 1) / kChunk;
}

// The scalar bodies. __restrict on the pointer parameters tells the
// compiler row and dist_row never alias, which is the precondition for
// vectorizing the read-modify-write.
void accumulate_span(double* __restrict row,
                     const double* __restrict dist_row, double v,
                     std::size_t n) noexcept {
  for (std::size_t m = 0; m < n; ++m)
    row[m] += positive_part(v - dist_row[m]);
}

void shift_span(double* __restrict row, const double* __restrict dist_row,
                double v_old, double v_new, std::size_t n) noexcept {
  for (std::size_t m = 0; m < n; ++m) {
    const double dm = dist_row[m];
    row[m] -= positive_part(v_old - dm) - positive_part(v_new - dm);
  }
}

RowEvent min_tightness_span(const double* __restrict dist_row,
                            const double* __restrict cost_row,
                            const double* __restrict bids_row, double raised,
                            double divisor, std::size_t base,
                            std::size_t count) noexcept {
  RowEvent best;
  if (divisor == 1.0) {
    for (std::size_t i = 0; i < count; ++i) {
      const double delta = positive_part_nanprop(
          dist_row[i] + positive_part_nanprop(cost_row[i] - bids_row[i]) -
          raised);
      if (delta < best.delta) {
        best.delta = delta;
        best.index = base + i;
      }
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const double delta =
          positive_part_nanprop(
              dist_row[i] +
              positive_part_nanprop(cost_row[i] - bids_row[i]) - raised) /
          divisor;
      if (delta < best.delta) {
        best.delta = delta;
        best.index = base + i;
      }
    }
  }
  return best;
}

}  // namespace

std::size_t parallel_threshold() noexcept {
  return threshold_slot().load(std::memory_order_relaxed);
}

void set_parallel_threshold(std::size_t threshold) noexcept {
  threshold_slot().store(threshold, std::memory_order_relaxed);
}

void accumulate_clipped_bid(double* row, const double* dist_row, double v,
                            std::size_t n) {
  if (!use_parallel(n)) {
    accumulate_span(row, dist_row, v, n);
    return;
  }
  parallel_for(num_chunks(n), [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    const std::size_t count = std::min(kChunk, n - begin);
    accumulate_span(row + begin, dist_row + begin, v, count);
  });
}

void shift_clipped_bid(double* row, const double* dist_row, double v_old,
                       double v_new, std::size_t n) {
  if (!use_parallel(n)) {
    shift_span(row, dist_row, v_old, v_new, n);
    return;
  }
  parallel_for(num_chunks(n), [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    const std::size_t count = std::min(kChunk, n - begin);
    shift_span(row + begin, dist_row + begin, v_old, v_new, count);
  });
}

std::size_t argmin_over_row(const double* row, std::size_t n) {
  // NaN-robust by construction: the running best starts at +inf and only
  // a strict < replaces it, so a NaN element (never < anything) can never
  // win. A span with no value below +inf keeps its first index, which
  // implements the documented "NaN compares as +inf, ties resolve to the
  // first index" semantics — the previous seeding with row[base] let a
  // NaN at the span start win the whole argmin silently.
  struct SpanMin {
    std::size_t index = 0;
    double key = std::numeric_limits<double>::infinity();
  };
  auto span_argmin = [row](std::size_t base, std::size_t count) {
    SpanMin best{base, std::numeric_limits<double>::infinity()};
    for (std::size_t i = 0; i < count; ++i) {
      if (row[base + i] < best.key) {
        best.key = row[base + i];
        best.index = base + i;
      }
    }
    return best;
  };
  if (!use_parallel(n)) return span_argmin(0, n).index;

  const std::size_t chunks = num_chunks(n);
  // omflp-lint: allow(kernel-purity) per-chunk partials, amortized over >=2^20 elements
  std::vector<SpanMin> partial(chunks);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    partial[c] = span_argmin(begin, std::min(kChunk, n - begin));
  });
  // Merge on the stored keys, not on row[] re-reads: re-reading would
  // reintroduce NaN poisoning ("candidate < NaN" is false, so a NaN chunk
  // winner used to shadow every later finite chunk).
  SpanMin best = partial[0];
  for (std::size_t c = 1; c < chunks; ++c)
    if (partial[c].key < best.key) best = partial[c];
  return best.index;
}

std::size_t argmin_over_row_where(const double* row,
                                  const std::uint32_t* keys,
                                  std::uint32_t limit,
                                  std::size_t n) {
  auto span_argmin = [row, keys, limit, n](std::size_t base,
                                           std::size_t count) {
    std::size_t best = n;  // "none eligible"
    double best_value = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t m = base + i;
      // Branch-free select: ineligible entries never beat best_value.
      const bool take = keys[m] <= limit && row[m] < best_value;
      best_value = take ? row[m] : best_value;
      best = take ? m : best;
    }
    return best;
  };
  if (!use_parallel(n)) return span_argmin(0, n);

  const std::size_t chunks = num_chunks(n);
  // omflp-lint: allow(kernel-purity) per-chunk partials, amortized over >=2^20 elements
  std::vector<std::size_t> partial(chunks);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    partial[c] = span_argmin(begin, std::min(kChunk, n - begin));
  });
  std::size_t best = n;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (partial[c] == n) continue;
    if (best == n || row[partial[c]] < row[best]) best = partial[c];
  }
  return best;
}

RowEvent min_tightness_over_row(const double* dist_row,
                                const double* cost_row,
                                const double* bids_row, double raised,
                                double divisor, std::size_t n) {
  // A non-positive (or NaN) divisor cannot define a tightness time:
  // dividing by 0 manufactures 0/0 = NaN for genuinely tight points, and
  // a negative divisor turns every positive delta into a negative "event
  // time" that wins the scan spuriously. Report "no event" instead.
  if (!(divisor > 0.0)) return RowEvent{};
  if (!use_parallel(n)) {
    // Blocked scan with early exit: a delta of exactly 0 cannot be beaten
    // (deltas are clipped non-negative) and, scanning left to right, the
    // first one found is the first-index tie-break winner.
    RowEvent best;
    for (std::size_t begin = 0; begin < n; begin += kBlock) {
      const std::size_t count = std::min(kBlock, n - begin);
      const RowEvent block =
          min_tightness_span(dist_row + begin, cost_row + begin,
                             bids_row + begin, raised, divisor, begin,
                             count);
      if (block.delta < best.delta) best = block;
      if (best.delta == 0.0) return best;
    }
    return best;
  }

  const std::size_t chunks = num_chunks(n);
  // omflp-lint: allow(kernel-purity) per-chunk partials, amortized over >=2^20 elements
  std::vector<RowEvent> partial(chunks);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kChunk;
    partial[c] =
        min_tightness_span(dist_row + begin, cost_row + begin,
                           bids_row + begin, raised, divisor, begin,
                           std::min(kChunk, n - begin));
  });
  RowEvent best = partial[0];
  for (std::size_t c = 1; c < chunks; ++c)
    if (partial[c].delta < best.delta) best = partial[c];
  return best;
}

std::size_t first_index_where_tight(const double* dist_row,
                                    const double* cost_row,
                                    const double* bids_row, double raised,
                                    std::size_t n) noexcept {
  for (std::size_t m = 0; m < n; ++m) {
    const double incentive = raised - dist_row[m];
    if (incentive >= 0.0 && bids_row[m] + incentive >= cost_row[m])
      return m;
  }
  return n;
}

}  // namespace omflp::kernel
