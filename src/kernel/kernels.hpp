// Hot-loop kernels — the branch-free inner loops of every bid-plane sweep.
//
// All PD-style algorithms in this repo (PD-OMFLP, Fotakis' OFL) spend their
// time in four |M|-length row operations over a request's archived-bid
// state:
//
//   accumulate_clipped_bid   row[m] += (v − dist[m])+          (archive)
//   shift_clipped_bid        row[m] −= (v_old−d)+ − (v_new−d)+ (reinvest)
//   min_tightness_over_row   min_m (dist[m] + (cost[m]−bids[m])+ − a)+ / c
//                            with first-index tie-break        (events)
//   argmin_over_row[_where]  nearest-point scans               (classes)
//
// The kernels take raw restrict-qualified pointers into contiguous rows
// (BidPlane rows, DistanceOracle::row()) so compilers can auto-vectorize
// them: no virtual calls, no perf hooks, no aliasing hazards in the loop
// body. Callers are responsible for the perf counters — one bulk
// OMFLP_PERF_ADD per row, which keeps BENCH counter totals identical to
// the historical per-element ticks.
//
// Rows at or above parallel_threshold() are split over parallel_for
// (src/support/parallel.hpp) in fixed 8192-element chunks. Chunk
// boundaries — not thread boundaries — define the work units, and
// per-chunk partial results are combined in chunk order, so every kernel
// is bit-identical for any thread count (the threads=1 vs threads=N
// determinism test in tests/test_kernel.cpp pins this down). Within a
// chunk the summation order equals the historical scalar loop, which is
// what keeps reference-mode PD runs bit-compatible. parallel_for spawns
// and joins its std::jthread workers per call (there is no persistent
// pool), so the default threshold sits far past spawn break-even; rows
// below it always run on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace omflp::kernel {

/// Rows shorter than this stay on the calling thread. The default (2^20
/// elements, ~8 MiB of doubles) is deliberately conservative: a kernel
/// pass over a shorter row is cheaper than spawning and joining the
/// per-call worker threads. Overridable with the OMFLP_KERNEL_THRESHOLD
/// environment variable (read once, at first use);
/// set_parallel_threshold() overrides both.
inline constexpr std::size_t kDefaultParallelThreshold = 1u << 20;

std::size_t parallel_threshold() noexcept;

/// Test / tuning hook. 0 forces the parallel split for every row;
/// SIZE_MAX disables it. Not thread-safe against concurrently running
/// kernels.
void set_parallel_threshold(std::size_t threshold) noexcept;

/// row[m] += (v − dist_row[m])+ for m in [0, n).
void accumulate_clipped_bid(double* row, const double* dist_row, double v,
                            std::size_t n);

/// row[m] −= (v_old − dist_row[m])+ − (v_new − dist_row[m])+ — the
/// reinvestment update when a bid's clip value drops from v_old to v_new.
void shift_clipped_bid(double* row, const double* dist_row, double v_old,
                       double v_new, std::size_t n);

/// First index of the minimum of row[0..n). Requires n > 0.
///
/// NaN semantics: a NaN element compares as +inf and can never win the
/// argmin; rows with no finite minimum (all NaN and/or +inf) return
/// index 0. Ties — including ties created by the NaN demotion — resolve
/// to the first index, for any thread count.
std::size_t argmin_over_row(const double* row, std::size_t n);

/// First index of the minimum of row[m] over the m with keys[m] <= limit.
/// Returns n when no index is eligible. A NaN element is never eligible
/// (it cannot beat the +inf running best), so an all-NaN eligible set
/// also returns n.
std::size_t argmin_over_row_where(const double* row,
                                  const std::uint32_t* keys,
                                  std::uint32_t limit,
                                  std::size_t n);

/// A constraint-tightness event over one row: the first index attaining
/// the minimal delta. Default state = "no event" (infinite delta).
struct RowEvent {
  double delta = std::numeric_limits<double>::infinity();
  std::size_t index = static_cast<std::size_t>(-1);
};

/// min over m of (dist_row[m] + (cost_row[m] − bids_row[m])+ − raised)+ /
/// divisor, with first-index tie-break — the constraint-(3)/(4) event
/// search of the primal–dual scheme. The division is applied per element
/// so results are bit-identical to the historical scalar loop. Requires
/// n > 0.
///
/// Edge semantics: an element whose inputs contain NaN yields a NaN
/// tightness and is skipped — NaN never reports an event (and never
/// reports spurious tightness). A divisor that is not strictly positive
/// (zero, negative, or NaN) defines no tightness time and returns the
/// default "no event" RowEvent; it is never forwarded into the division,
/// where 0/0 would manufacture NaN and a negative divisor would turn
/// positive deltas into winning negative event times.
RowEvent min_tightness_over_row(const double* dist_row,
                                const double* cost_row,
                                const double* bids_row, double raised,
                                double divisor, std::size_t n);

/// First m where the investment already covers point m at the current
/// raised amount: dist_row[m] <= raised and
/// bids_row[m] + (raised − dist_row[m]) >= cost_row[m] (i.e. the
/// tightness delta is exactly 0). Returns n when no point is tight.
/// Answers the same zero-delta predicate min_tightness_over_row's serial
/// path early-exits on (that path implements it inline as blocked
/// scans); exposed as a standalone kernel for callers that only need
/// tightness membership, not the minimizing event. NaN inputs at a point
/// fail both comparisons, so a NaN element is never reported tight.
std::size_t first_index_where_tight(const double* dist_row,
                                    const double* cost_row,
                                    const double* bids_row, double raised,
                                    std::size_t n) noexcept;

}  // namespace omflp::kernel
