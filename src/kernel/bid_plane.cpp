#include "kernel/bid_plane.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"

namespace omflp::kernel {

namespace {

constexpr std::size_t kAlignDoubles = 8;  // 64 bytes / sizeof(double)

double* align_up(double* p) noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t aligned = (addr + 63u) & ~std::uintptr_t{63u};
  return reinterpret_cast<double*>(aligned);
}

}  // namespace

void BidPlane::reset(std::size_t num_rows, std::size_t row_length) {
  OMFLP_REQUIRE(num_rows < kInactive, "BidPlane: too many rows");
  row_length_ = row_length;
  stride_ = (row_length + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
  active_rows_ = 0;
  slot_capacity_ = 0;
  slot_of_row_.assign(num_rows, kInactive);
  storage_.reset();
  arena_ = nullptr;
}

double* BidPlane::activate(std::size_t r) {
  OMFLP_REQUIRE(r < slot_of_row_.size(), "BidPlane: row out of range");
  if (slot_of_row_[r] == kInactive) {
    if (active_rows_ == slot_capacity_) grow(active_rows_ + 1);
    slot_of_row_[r] = static_cast<std::uint32_t>(active_rows_++);
    double* fresh = row(r);
    std::memset(fresh, 0, stride_ * sizeof(double));
  }
  return row(r);
}

void BidPlane::grow(std::size_t min_slots) {
  std::size_t capacity = std::max<std::size_t>(4, slot_capacity_ * 2);
  capacity = std::max(capacity, min_slots);
  capacity = std::min(capacity, slot_of_row_.size());
  // stride_ can be 0 when row_length is 0; keep the arena pointer valid
  // (aligned, never dereferenced for a 0-length row). for_overwrite:
  // live rows are memcpy'd over the fresh storage and new rows are
  // zeroed by activate(), so value-initialization here would be a
  // redundant full-arena store.
  auto fresh = std::make_unique_for_overwrite<double[]>(
      capacity * stride_ + kAlignDoubles);
  double* fresh_arena = align_up(fresh.get());
  if (active_rows_ > 0)
    std::memcpy(fresh_arena, arena_,
                active_rows_ * stride_ * sizeof(double));
  storage_ = std::move(fresh);
  arena_ = fresh_arena;
  slot_capacity_ = capacity;
}

}  // namespace omflp::kernel
