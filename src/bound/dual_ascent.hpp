// Dual-ascent OPT lower bounder.
//
// Produces a feasible point of the LP dual described in
// bound/certificate.hpp — and therefore a certified lower bound on OPT —
// by raising duals synchronously, Jain–Vazirani style, adapted to the
// multi-commodity configuration LP:
//
//   * Split weights. Each request splits its connection radius equally
//     over its demand set, u_{r,e} = 1/|s_r|. Since
//     Σ_{e∈σ∩s_r} d(m,r)/|s_r| ≤ d(m,r), the dual constraint (D) follows
//     from the per-commodity conditions
//         P_m(e) = Σ_{r: e∈s_r} (a_{r,e} − d(m,r)/|s_r|)₊ ≤ w_e(m)
//     for any per-commodity budgets with Σ_{e∈σ} w_e(m) ≤ f^σ_m for all σ.
//
//   * Budgets. Additive models report exact weights
//     (FacilityCostModel::additive_weights); size-only models use
//     w_e(m) = min_k g_m(k)/k (each commodity of a size-k configuration
//     can be charged f/k); any other model with |S| small enough is
//     handled by exhaustive enumeration w_e(m) = min_{σ∋e} f^σ_m/|σ|.
//     Unsupported structures throw BoundUnsupportedError — a smaller
//     feasible region is never silently invented.
//
//   * Ascent. Per commodity e, all active duals a_{r,e} rise at unit
//     speed; facility m accrues load Σ (t − d̃(m,r))₊ over the requests
//     that reached it (d̃ = d/|s_r|). When the load of some facility hits
//     its budget w_e(m), every active request that reached it freezes
//     (and requests reaching an exhausted facility later freeze on
//     contact), exactly the classic ascent specialized to budgeted
//     facilities. Event-driven: a priority queue over facilities with
//     (time, point id) ordering and lazy invalidation; freezes propagate
//     eagerly. The per-commodity run is strictly sequential, so results
//     are bitwise deterministic; commodities are processed via
//     parallel_for into pre-sized slots merged in commodity order, so the
//     certificate is identical for every OMFLP_THREADS value.
//
// The emitted DualCertificate is self-contained; callers are expected to
// run verify_certificate before trusting the bound (the `omflp bound`
// verb and estimate_opt both do).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "bound/certificate.hpp"
#include "instance/instance.hpp"

namespace omflp {

/// Thrown when no sound per-commodity budget can be derived for the
/// instance's cost model (not additive, not size-only, and the universe
/// is too large to enumerate configurations).
class BoundUnsupportedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DualAscentOptions {
  /// DistanceOracle dense-matrix limit (|M| beyond it falls back to
  /// virtual metric calls when materializing rows).
  std::size_t distance_cache_limit = 4096;
  /// |S| cap for the exhaustive budget derivation on unstructured models
  /// (2^|S| configuration enumerations per distinct point).
  CommodityId max_exhaustive_commodities = 16;
  /// Worker threads for the across-commodity fan-out (0 = default count).
  std::size_t threads = 0;
};

struct DualAscentResult {
  DualCertificate certificate;
  /// == certificate.objective; the certified lower bound on OPT.
  double lower_bound = 0.0;
  /// Dual variables raised to their freeze value (Σ_e |{r : e ∈ s_r}|);
  /// also ticked into the duals_raised PerfCounter.
  std::uint64_t duals_raised = 0;
  /// (commodity, point) pairs whose budget was driven tight.
  std::size_t tight_facilities = 0;
  /// Point with the smallest audited slack (first index on ties) — the
  /// binding facility of the certificate.
  PointId min_slack_point = 0;
};

/// Runs the ascent and assembles the certificate (including the audit
/// slack vector). Throws BoundUnsupportedError for unsupported cost
/// structures and std::invalid_argument on an empty instance.
DualAscentResult dual_ascent_lower_bound(const Instance& instance,
                                         const DualAscentOptions& options = {});

/// The per-commodity budgets w_e(m) used by the ascent at point m
/// (exposed for tests; same derivation rules as the bounder).
std::vector<double> commodity_budgets(const FacilityCostModel& cost,
                                      PointId m,
                                      const DualAscentOptions& options = {});

}  // namespace omflp
