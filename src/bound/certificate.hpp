// DualCertificate — a machine-checkable proof of an OPT lower bound.
//
// The LP relaxation of the offline problem (the one behind the paper's
// primal–dual analysis, Corollary 17) has one dual variable a_{r,e} ≥ 0
// per request r and demanded commodity e ∈ s_r, and one constraint per
// (point m, configuration σ ⊆ S):
//
//     Σ_r ( Σ_{e ∈ σ∩s_r} a_{r,e}  −  d(m, r) )₊  ≤  f^σ_m.          (D)
//
// Any feasible dual point certifies, by weak LP duality,
//
//     Σ_{r} Σ_{e ∈ s_r} a_{r,e}  ≤  LP-OPT  ≤  OPT,
//
// so the dual objective is a valid lower bound on the offline optimum —
// the quantity every measured competitive ratio should be divided by to
// get a *certified* (over-estimating, hence safe for validating upper
// bound theorems) ratio.
//
// A DualCertificate stores the duals, the claimed objective, and a
// per-point audit value (facility slack). verify_certificate() re-derives
// feasibility from the Instance alone — it shares no code with the
// bounder that produced the certificate, in the independent-verifier
// tradition of the solution and stream verifiers. A bound is trusted only
// if the checker passes.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "instance/instance.hpp"

namespace omflp {

struct DualCertificate {
  std::size_t num_requests = 0;
  CommodityId num_commodities = 0;
  std::size_t num_points = 0;

  /// Claimed dual objective Σ_{r,e} a_{r,e} — the certified lower bound.
  double objective = 0.0;

  /// duals[r][i] = a_{r,e_i} where e_0 < e_1 < ... enumerate s_r in
  /// increasing commodity order; duals[r].size() == |s_r|.
  std::vector<std::vector<double>> duals;

  /// Canonical audit slacks, one per point m: the minimum slack of the
  /// singleton constraints over *demanded* commodities and of the
  /// full-configuration constraint,
  ///   min( min_{e demanded} f^{{e}}_m − Σ_{r: e∈s_r} (a_{r,e} − d(m,r))₊,
  ///        f^S_m − Σ_r (A_r − d(m,r))₊ )      with A_r = Σ_{e∈s_r} a_{r,e}.
  /// Redundant with feasibility (any valid certificate has slack ≥ 0) but
  /// stored so tampering with either the duals or the slack vector is
  /// detected by recomputation.
  std::vector<double> facility_slack;

  std::string method = "dual-ascent";
};

// ---- serialization (OMFLP-CERT v1 text format) ----------------------------

void write_certificate(std::ostream& os, const DualCertificate& cert);
std::string certificate_to_string(const DualCertificate& cert);

/// Strict parser for the format write_certificate emits. Throws
/// std::invalid_argument on malformed input; never allocates
/// proportionally to a declared-but-absent count (fuzzed traces).
DualCertificate read_certificate(std::istream& is);
DualCertificate certificate_from_string(const std::string& text);

// ---- verification ----------------------------------------------------------

struct VerifyCertificateOptions {
  /// Relative tolerance: a constraint lhs ≤ rhs is accepted when
  /// lhs ≤ rhs + tolerance·max(1, |rhs|); equalities analogously.
  double tolerance = 1e-9;

  /// The exhaustive path enumerates every configuration σ ⊆ S and checks
  /// constraint (D) directly — the gold standard, independent of any
  /// cost-model structure claims. It runs when 2^|S| · n · |M| fits this
  /// work budget (and |S| ≤ 63); beyond it the checker falls back to the
  /// structured sufficient conditions below.
  std::size_t max_exhaustive_work = std::size_t{1} << 27;
};

/// Re-derives dual feasibility of `cert` against `instance` from scratch.
/// Returns std::nullopt when the certificate is valid; otherwise a
/// human-readable description of the first violation found.
///
/// Verification paths, in order of preference:
///   1. exhaustive — constraint (D) for every (m, σ) pair;
///   2. structured — via the split decomposition: with
///      P_m(e) = Σ_{r: e∈s_r} (a_{r,e} − d(m,r)/|s_r|)₊ it holds that
///      Σ_{e∈σ∩s_r} d(m,r)/|s_r| ≤ d(m,r), hence
///      (Σ_{e∈σ∩s_r} a_{r,e} − d(m,r))₊ ≤ Σ_{e∈σ∩s_r} (a_{r,e} − d(m,r)/|s_r|)₊
///      and the lhs of (D) is at most Σ_{e∈σ} P_m(e). Feasibility then
///      follows from either of two spot-checked structural claims:
///        * additive costs (FacilityCostModel::additive_weights):
///          P_m(e) ≤ w_e(m) per commodity suffices since Σ_{e∈σ} w_e = f^σ;
///        * size-only costs (cost_by_size): the sum of the j largest
///          P_m(·) must be ≤ min_{k ≥ j} g_m(k) for every j (the suffix
///          minimum guards non-monotone g against configurations padded
///          with undemanded commodities).
///      Both claims are spot-checked against open_cost on concrete
///      configurations before being relied on.
/// Certificates whose instance is neither exhaustively checkable nor
/// structurally recognizable are rejected (soundness over completeness).
std::optional<std::string> verify_certificate(
    const Instance& instance, const DualCertificate& cert,
    const VerifyCertificateOptions& options = {});

}  // namespace omflp
