#include "bound/window.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "support/assert.hpp"

namespace omflp {

namespace {

double bound_window(const MetricPtr& metric, const CostModelPtr& cost,
                    std::vector<Request> requests, const std::string& name,
                    const WindowBoundOptions& options,
                    std::uint64_t& duals_raised) {
  Instance window(metric, cost, std::move(requests), name);
  const DualAscentResult res =
      dual_ascent_lower_bound(window, options.ascent);
  if (options.verify) {
    if (const auto violation =
            verify_certificate(window, res.certificate,
                               options.verify_options))
      throw std::logic_error("bound_stream_windows: certificate for " +
                             name + " failed verification: " + *violation);
  }
  duals_raised += res.duals_raised;
  return res.lower_bound;
}

}  // namespace

StreamBoundResult bound_stream_windows(EventSource& source,
                                       const WindowBoundOptions& options) {
  OMFLP_REQUIRE(options.max_window_arrivals > 0,
                "bound_stream_windows: window cap must be positive");
  const MetricPtr metric = source.metric();
  const CostModelPtr cost = source.cost();
  const std::size_t points = metric->num_points();
  const CommodityId s = cost->num_commodities();

  StreamBoundResult result;

  // Timeline state (the semantics of EventStream::validate): activity per
  // arrival id, pending lease expiries ordered on (deadline, arrival id).
  std::vector<bool> active;
  std::size_t num_active = 0;
  using Expiry = std::pair<std::uint64_t, RequestId>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
      expiries;

  // Current window: its arrivals (the bounded buffer) and start event.
  std::vector<Request> window_requests;
  std::uint64_t window_first_event = 0;

  const auto close_window = [&](bool forced) {
    if (window_requests.empty()) return;
    WindowBoundRow row;
    row.first_event = window_first_event;
    row.arrivals = window_requests.size();
    row.forced_split = forced;
    row.lower = bound_window(
        metric, cost, std::move(window_requests),
        source.name() + "/window-" + std::to_string(result.windows),
        options, result.duals_raised);
    window_requests.clear();
    result.windowed_lower += row.lower;
    result.max_window_arrivals =
        std::max(result.max_window_arrivals, row.arrivals);
    ++result.windows;
    if (forced) ++result.forced_splits;
    result.per_window.push_back(row);
  };

  const auto retire = [&](RequestId id) {
    active[id] = false;
    --num_active;
  };

  std::vector<StreamEvent> batch;
  std::uint64_t clock = 0;
  for (;;) {
    batch.clear();
    if (source.next_batch(batch, 8192) == 0) break;
    for (const StreamEvent& event : batch) {
      // Lease expiries due before event `clock`.
      while (!expiries.empty() && expiries.top().first <= clock) {
        const RequestId id = expiries.top().second;
        expiries.pop();
        if (id < active.size() && active[id]) retire(id);
      }
      if (num_active == 0) close_window(/*forced=*/false);

      if (event.kind == StreamEvent::Kind::kArrival) {
        OMFLP_REQUIRE(event.request.location < points,
                      "bound_stream_windows: arrival outside the metric");
        OMFLP_REQUIRE(
            event.request.commodities.universe_size() == s &&
                !event.request.commodities.empty(),
            "bound_stream_windows: malformed arrival demand set");
        const RequestId id = static_cast<RequestId>(result.arrivals);
        ++result.arrivals;
        active.push_back(true);
        ++num_active;
        if (event.lease > 0)
          expiries.push({lease_deadline(clock, event.lease), id});
        if (window_requests.empty()) window_first_event = clock;
        window_requests.push_back(event.request);
        if (window_requests.size() >= options.max_window_arrivals)
          close_window(/*forced=*/true);
      } else {
        OMFLP_REQUIRE(event.target < active.size() && active[event.target],
                      "bound_stream_windows: departure of an unknown or "
                      "inactive arrival");
        retire(event.target);
      }
      ++clock;
    }
  }
  close_window(/*forced=*/false);
  result.events = clock;
  return result;
}

ChunkedBound bound_instance_chunked(const Instance& instance,
                                    const WindowBoundOptions& options) {
  OMFLP_REQUIRE(options.max_window_arrivals > 0,
                "bound_instance_chunked: chunk cap must be positive");
  const std::size_t n = instance.num_requests();
  OMFLP_REQUIRE(n > 0, "bound_instance_chunked: empty instance");

  const std::size_t chunks =
      (n + options.max_window_arrivals - 1) / options.max_window_arrivals;
  ChunkedBound result;
  result.chunks = chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    std::vector<Request> chunk(instance.requests().begin() +
                                   static_cast<std::ptrdiff_t>(begin),
                               instance.requests().begin() +
                                   static_cast<std::ptrdiff_t>(end));
    const double lower = bound_window(
        instance.metric_ptr(), instance.cost_ptr(), std::move(chunk),
        instance.name() + "/chunk-" + std::to_string(c), options,
        result.duals_raised);
    if (lower > result.lower) {
      result.lower = lower;
      result.best_chunk = c;
    }
  }
  return result;
}

}  // namespace omflp
