// Windowed certified lower bounds for dynamic event streams.
//
// A million-event churn trace cannot be bounded in one shot — the dual
// ascent needs the request set in memory — but its timeline decomposes:
// scanning events in order while tracking the true active count (arrivals,
// explicit departures, lease expiries — the timeline semantics of
// instance/event_stream.hpp) splits the stream into disjoint *busy
// windows*, maximal spans between moments where the active set drains to
// empty. A hard cap on arrivals per window (`max_window_arrivals`)
// force-splits busy periods that never drain, so peak memory is
// O(cap · |M|) regardless of stream length.
//
// What the numbers certify — stated precisely, because disjointness alone
// does NOT make per-window bounds sum to a bound on OPT of the union
// (offline facilities are shared across windows):
//
//   * per window w, LB(A_w) ≤ OPT(A_w) where A_w is the window's arrival
//     set as a static instance — each window carries its own verified
//     DualCertificate;
//   * the sum Σ_w LB(A_w) ≤ Σ_w OPT(A_w), the cost of the *windowed
//     re-optimizing adversary*: an offline player who serves each busy
//     window with a fresh optimal solution. This is the natural offline
//     baseline for gross (total) online cost on streams with departures
//     (cf. Online Facility Location with Deletions); when the stream is
//     one busy window the sum degenerates to the exact all-arrivals bound;
//   * the max over any request partition, max_c LB(chunk_c) ≤ OPT(all) —
//     because OPT is monotone under taking subsets of requests —
//     which is how bound_instance_chunked certifies a lower bound on
//     OPT(surviving) for `stream --ratio` brackets without ever running
//     the ascent on more than `max_window_arrivals` requests at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bound/certificate.hpp"
#include "bound/dual_ascent.hpp"
#include "instance/event_stream.hpp"

namespace omflp {

struct WindowBoundOptions {
  /// Busy windows are force-split once they accumulate this many
  /// arrivals (memory cap; also the chunk size of
  /// bound_instance_chunked).
  std::size_t max_window_arrivals = 4096;
  DualAscentOptions ascent;
  /// Run verify_certificate on every window/chunk certificate; a checker
  /// failure throws std::logic_error (an unverifiable bound is a bug,
  /// mirroring the solution-verifier convention).
  bool verify = true;
  VerifyCertificateOptions verify_options;
};

struct WindowBoundRow {
  /// Event index of the window's first arrival.
  std::uint64_t first_event = 0;
  std::size_t arrivals = 0;
  double lower = 0.0;
  /// True when the window was closed by the arrival cap rather than by
  /// the active set draining to empty.
  bool forced_split = false;
};

struct StreamBoundResult {
  /// Σ_w LB(A_w) — certified lower bound on the windowed re-optimizing
  /// adversary's total cost (see file comment for exact semantics).
  double windowed_lower = 0.0;
  std::size_t windows = 0;
  std::size_t forced_splits = 0;
  /// Largest window actually bounded (≤ options.max_window_arrivals).
  std::size_t max_window_arrivals = 0;
  std::uint64_t events = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t duals_raised = 0;
  std::vector<WindowBoundRow> per_window;
};

/// Streams `source` once, bounding each busy window as it closes.
/// Bounded memory: O(max_window_arrivals · |M|) plus the per-arrival
/// activity bitmap. Throws std::invalid_argument on malformed events
/// (the conditions EventStream::validate rejects) and std::logic_error
/// when a window certificate fails verification.
StreamBoundResult bound_stream_windows(EventSource& source,
                                       const WindowBoundOptions& options = {});

struct ChunkedBound {
  /// max_c LB(chunk_c) — certified lower bound on OPT(instance).
  double lower = 0.0;
  std::size_t chunks = 0;
  /// Index of the chunk attaining the max (first on ties).
  std::size_t best_chunk = 0;
  std::uint64_t duals_raised = 0;
};

/// Certified lower bound on OPT of a static instance of any size: the
/// requests are split into ⌈n / max_window_arrivals⌉ balanced contiguous
/// chunks, each chunk is bounded (and verified) separately, and the max
/// composes because OPT is monotone under request subsets. One chunk ⇒
/// the plain dual-ascent bound.
ChunkedBound bound_instance_chunked(const Instance& instance,
                                    const WindowBoundOptions& options = {});

}  // namespace omflp
