#include "bound/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "bound/window.hpp"
#include "offline/exact_small.hpp"

namespace omflp {

void BoundRegistry::add(BoundMethodSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("BoundRegistry: empty method name");
  if (!spec.make)
    throw std::invalid_argument("BoundRegistry: method '" + spec.name +
                                "' has no factory");
  if (specs_.count(spec.name))
    throw std::invalid_argument("BoundRegistry: duplicate method '" +
                                spec.name + "'");
  specs_.emplace(spec.name, std::move(spec));
}

bool BoundRegistry::contains(const std::string& name) const {
  return specs_.count(name) != 0;
}

const BoundMethodSpec& BoundRegistry::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    std::ostringstream os;
    os << "BoundRegistry: unknown method '" << name << "' (known:";
    for (const auto& [known, unused] : specs_) os << ' ' << known;
    os << ')';
    throw std::invalid_argument(os.str());
  }
  return it->second;
}

std::vector<std::string> BoundRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, unused] : specs_) out.push_back(name);
  return out;
}

BoundOutcome BoundRegistry::make(const std::string& name,
                                 const Instance& instance,
                                 const DualAscentOptions& options) const {
  return spec(name).make(instance, options);
}

namespace {

BoundOutcome run_dual_ascent(const Instance& instance,
                             const DualAscentOptions& options) {
  const DualAscentResult res = dual_ascent_lower_bound(instance, options);
  if (const auto violation = verify_certificate(instance, res.certificate))
    throw std::logic_error(
        "bound method dual-ascent: certificate failed verification: " +
        *violation);
  BoundOutcome out;
  out.lower = res.lower_bound;
  out.exact = false;
  out.method = res.certificate.method;
  out.certificate = res.certificate;
  return out;
}

BoundOutcome run_exact_small(const Instance& instance,
                             const DualAscentOptions& /*options*/) {
  const ExactSolverLimits limits;
  if (instance.metric().num_points() > limits.max_points ||
      instance.demanded_union().count() > limits.max_union ||
      instance.num_requests() > limits.max_requests)
    throw BoundUnsupportedError(
        "bound method exact-small: instance exceeds ExactSolverLimits");
  const OfflineSolution sol = solve_exact_small(instance, limits);
  BoundOutcome out;
  out.lower = sol.cost;
  out.exact = sol.exact;
  out.method = sol.method;
  return out;
}

BoundOutcome run_certificate(const Instance& instance,
                             const DualAscentOptions& /*options*/) {
  const auto& cert = instance.opt_certificate();
  if (!cert || !cert->exact)
    throw BoundUnsupportedError(
        "bound method certificate: instance carries no exact generator "
        "certificate");
  BoundOutcome out;
  out.lower = cert->upper_bound;
  out.exact = true;
  out.method = "certificate(exact)";
  return out;
}

BoundOutcome run_chunked(const Instance& instance,
                         const DualAscentOptions& options) {
  WindowBoundOptions wopt;
  wopt.ascent = options;
  const ChunkedBound chunked = bound_instance_chunked(instance, wopt);
  BoundOutcome out;
  out.lower = chunked.lower;
  out.exact = false;
  std::ostringstream os;
  os << "chunked(" << chunked.chunks << ")";
  out.method = os.str();
  return out;
}

BoundOutcome run_auto(const Instance& instance,
                      const DualAscentOptions& options) {
  try {
    return run_certificate(instance, options);
  } catch (const BoundUnsupportedError&) {
  }
  try {
    return run_exact_small(instance, options);
  } catch (const BoundUnsupportedError&) {
  }
  try {
    return run_dual_ascent(instance, options);
  } catch (const BoundUnsupportedError&) {
  }
  return run_chunked(instance, options);
}

}  // namespace

const BoundRegistry& default_bound_registry() {
  static const BoundRegistry registry = [] {
    BoundRegistry r;
    r.add({"dual-ascent",
           "native dual-ascent LP bound with a verified certificate",
           run_dual_ascent});
    r.add({"exact-small",
           "exhaustive exact solver (tiny instances only)",
           run_exact_small});
    r.add({"certificate",
           "exact OPT recorded by an adversarial generator",
           run_certificate});
    r.add({"chunked",
           "max over contiguous-chunk dual-ascent bounds (any size)",
           run_chunked});
    r.add({"auto",
           "strongest applicable: certificate, exact-small, dual-ascent, "
           "chunked",
           run_auto});
    return r;
  }();
  return registry;
}

}  // namespace omflp
