#include "bound/dual_ascent.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "kernel/kernels.hpp"
#include "metric/distance_oracle.hpp"
#include "obs/trace_sink.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace omflp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

CommoditySet set_from_mask(CommodityId universe, std::uint64_t mask) {
  CommoditySet s(universe);
  while (mask) {
    const int bit = __builtin_ctzll(mask);
    s.add(static_cast<CommodityId>(bit));
    mask &= mask - 1;
  }
  return s;
}

std::vector<double> budgets_at(const FacilityCostModel& cost, PointId m,
                               CommodityId max_exhaustive) {
  const CommodityId s = cost.num_commodities();

  if (const auto weights = cost.additive_weights(m)) {
    if (weights->size() != s)
      throw BoundUnsupportedError(
          "dual_ascent: additive_weights reports the wrong universe size");
    for (double w : *weights)
      if (!(w >= 0.0) || !std::isfinite(w))
        throw BoundUnsupportedError(
            "dual_ascent: additive_weights reports a non-finite or "
            "negative weight");
    return *weights;
  }

  if (cost.cost_by_size(m, 1).has_value()) {
    // Each commodity of a size-k configuration can be charged g(k)/k, so
    // the safe per-commodity budget is the minimum of that over k.
    double best = kInf;
    for (CommodityId k = 1; k <= s; ++k) {
      const auto g = cost.cost_by_size(m, k);
      if (!g || !(*g >= 0.0) || !std::isfinite(*g))
        throw BoundUnsupportedError(
            "dual_ascent: cost_by_size is partial or non-finite");
      best = std::min(best, *g / static_cast<double>(k));
    }
    return std::vector<double>(s, best);
  }

  if (s <= max_exhaustive && s < 30) {
    std::vector<double> w(s, kInf);
    const std::uint64_t num_configs = std::uint64_t{1} << s;
    for (std::uint64_t mask = 1; mask < num_configs; ++mask) {
      const double c = cost.open_cost(m, set_from_mask(s, mask));
      if (!(c >= 0.0) || !std::isfinite(c))
        throw BoundUnsupportedError(
            "dual_ascent: open_cost is non-finite or negative");
      const double share =
          c / static_cast<double>(__builtin_popcountll(mask));
      std::uint64_t bits = mask;
      while (bits) {
        const int e = __builtin_ctzll(bits);
        w[static_cast<std::size_t>(e)] =
            std::min(w[static_cast<std::size_t>(e)], share);
        bits &= bits - 1;
      }
    }
    return w;
  }

  throw BoundUnsupportedError(
      "dual_ascent: cost model is neither additive nor size-only and the "
      "commodity universe is too large to enumerate configurations");
}

/// One (request id, dual slot within the request's demand set) pair of a
/// commodity's request list.
struct DemandRef {
  std::uint32_t request = 0;
  std::uint32_t slot = 0;
};

struct AscentOutcome {
  std::vector<double> freeze;  // per local request, the final dual value
  double objective = 0.0;
  std::size_t tight = 0;
};

/// The per-commodity synchronous ascent. Strictly sequential — the
/// result is a pure function of the inputs, independent of thread count.
AscentOutcome run_commodity_ascent(
    const std::vector<DemandRef>& members,
    const std::vector<const double*>& request_row,
    const std::vector<double>& inv_k, const std::vector<double>& budget,
    std::size_t num_points, std::vector<double>& scratch_scaled,
    const std::vector<double>& zeros) {
  const std::size_t ne = members.size();
  AscentOutcome out;
  out.freeze.assign(ne, 0.0);

  // Fast path: a lone request freezes at the earliest budget exhaustion
  // over all facilities, min_m (d̃(m,r) + w(m)) — exactly the
  // min-tightness kernel with zero archived bids and zero raised amount.
  if (ne == 1) {
    const double* row = request_row[members[0].request];
    const double inv = inv_k[members[0].request];
    for (std::size_t m = 0; m < num_points; ++m)
      scratch_scaled[m] = row[m] * inv;
    const kernel::RowEvent event = kernel::min_tightness_over_row(
        scratch_scaled.data(), budget.data(), zeros.data(), /*raised=*/0.0,
        /*divisor=*/1.0, num_points);
    out.freeze[0] = event.delta;
    out.objective = event.delta;
    out.tight = 1;
    return out;
  }

  // Reach lists: per facility, (d̃, local request) ascending.
  std::vector<std::vector<std::pair<double, std::uint32_t>>> reach(
      num_points);
  for (auto& lst : reach) lst.reserve(ne);
  for (std::uint32_t j = 0; j < ne; ++j) {
    const double* row = request_row[members[j].request];
    const double inv = inv_k[members[j].request];
    for (std::size_t m = 0; m < num_points; ++m)
      reach[m].push_back({row[m] * inv, j});
  }
  for (auto& lst : reach) std::sort(lst.begin(), lst.end());

  struct Fac {
    double load = 0.0;
    double slope = 0.0;
    double last_t = 0.0;
    std::uint64_t gen = 0;
    std::uint32_t cursor = 0;
    bool tight = false;
  };
  std::vector<Fac> fac(num_points);
  std::vector<char> active(ne, 1);
  std::vector<char> counted(ne * num_points, 0);
  std::size_t active_count = ne;

  // (time, facility, generation); min on (time, facility) so simultaneous
  // events resolve in point order for any history. Stale generations are
  // discarded lazily on pop.
  using Event = std::tuple<double, std::uint32_t, std::uint64_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;

  const auto schedule = [&](std::uint32_t m) {
    Fac& f = fac[m];
    auto& lst = reach[m];
    while (f.cursor < lst.size() && !active[lst[f.cursor].second])
      ++f.cursor;
    const double reach_t =
        f.cursor < lst.size() ? lst[f.cursor].first : kInf;
    double tight_t = kInf;
    if (!f.tight && f.slope > 0.0)
      tight_t =
          std::max(f.last_t, f.last_t + (budget[m] - f.load) / f.slope);
    const double t = std::min(reach_t, tight_t);
    if (t < kInf) pq.push({t, m, f.gen});
  };

  const auto freeze_one = [&](std::uint32_t j, double t) {
    active[j] = 0;
    out.freeze[j] = t;
    --active_count;
    const char* counted_row = counted.data() + std::size_t{j} * num_points;
    for (std::uint32_t m = 0; m < num_points; ++m) {
      if (!counted_row[m]) continue;
      counted[std::size_t{j} * num_points + m] = 0;
      Fac& f = fac[m];
      if (f.tight) continue;
      f.load += f.slope * (t - f.last_t);
      f.last_t = t;
      f.slope -= 1.0;
      ++f.gen;
      schedule(m);
    }
  };

  for (std::uint32_t m = 0; m < num_points; ++m) schedule(m);

  while (active_count > 0) {
    OMFLP_REQUIRE(!pq.empty(),
                  "dual_ascent: event queue exhausted with active duals");
    const auto [t, m, gen] = pq.top();
    pq.pop();
    Fac& f = fac[m];
    if (gen != f.gen) continue;
    ++f.gen;  // invalidate any other pending event for m

    if (!f.tight) {
      f.load += f.slope * (t - f.last_t);
      f.last_t = t;
    }

    auto& lst = reach[m];
    while (f.cursor < lst.size() && lst[f.cursor].first <= t) {
      const std::uint32_t j = lst[f.cursor].second;
      ++f.cursor;
      if (!active[j]) continue;
      if (f.tight) {
        // Reaching an exhausted facility caps the dual on contact.
        freeze_one(j, t);
      } else {
        f.slope += 1.0;
        counted[std::size_t{j} * num_points + m] = 1;
      }
    }

    if (!f.tight && f.slope > 0.0) {
      // Freeze marginally early rather than marginally late: an early
      // freeze only shrinks the bound, never the feasible region.
      const double eps = 1e-12 * std::max(1.0, budget[m]);
      if (f.load >= budget[m] - eps) {
        f.tight = true;
        ++out.tight;
        for (std::uint32_t i = 0; i < f.cursor; ++i) {
          const std::uint32_t j = lst[i].second;
          if (active[j]) freeze_one(j, t);
        }
      }
    }

    schedule(m);
  }

  for (std::uint32_t j = 0; j < ne; ++j) out.objective += out.freeze[j];
  return out;
}

}  // namespace

std::vector<double> commodity_budgets(const FacilityCostModel& cost,
                                      PointId m,
                                      const DualAscentOptions& options) {
  return budgets_at(cost, m, options.max_exhaustive_commodities);
}

DualAscentResult dual_ascent_lower_bound(const Instance& instance,
                                         const DualAscentOptions& options) {
  const std::size_t n = instance.num_requests();
  OMFLP_REQUIRE(n > 0, "dual_ascent: empty instance");
  const std::size_t points = instance.metric().num_points();
  const CommodityId s = instance.num_commodities();

  // Distance rows per *distinct* request location (requests cluster on
  // few points in most scenarios), copied out of the oracle so worker
  // threads only touch plain read-only memory.
  DistanceOracle oracle(instance.metric_ptr(), options.distance_cache_limit);
  std::vector<std::uint32_t> slot_of_point(points, ~std::uint32_t{0});
  std::vector<const double*> request_row(n, nullptr);
  std::vector<double> rows;
  std::size_t distinct = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const PointId loc = instance.request(static_cast<RequestId>(r)).location;
    OMFLP_REQUIRE(loc < points, "dual_ascent: request outside the metric");
    if (slot_of_point[loc] == ~std::uint32_t{0}) {
      slot_of_point[loc] = static_cast<std::uint32_t>(distinct++);
      rows.resize(distinct * points);
      const double* src = oracle.row(loc);
      std::copy(src, src + points,
                rows.begin() + static_cast<std::ptrdiff_t>(
                                   (distinct - 1) * points));
      OMFLP_PERF_ADD(distance_lookups, points);
    }
  }
  for (std::size_t r = 0; r < n; ++r)
    request_row[r] =
        rows.data() +
        std::size_t{slot_of_point[instance.request(static_cast<RequestId>(r))
                                      .location]} *
            points;

  // Demand bookkeeping: per request the split divisor, per commodity the
  // (request, dual slot) membership list.
  std::vector<double> inv_k(n, 0.0);
  std::vector<std::vector<DemandRef>> members(s);
  for (std::size_t r = 0; r < n; ++r) {
    const Request& request = instance.request(static_cast<RequestId>(r));
    const CommodityId k = request.commodities.count();
    OMFLP_REQUIRE(k > 0, "dual_ascent: empty demand set");
    inv_k[r] = 1.0 / static_cast<double>(k);
    std::uint32_t slot = 0;
    request.commodities.for_each([&](CommodityId e) {
      members[e].push_back({static_cast<std::uint32_t>(r), slot++});
    });
  }
  std::vector<CommodityId> demanded;
  std::uint64_t total_duals = 0;
  for (CommodityId e = 0; e < s; ++e)
    if (!members[e].empty()) {
      demanded.push_back(e);
      total_duals += members[e].size();
    }

  // Largest commodity's (requests × points) footprint gates the event
  // machinery (reach lists + counted bits per facility).
  std::size_t max_ne = 0;
  for (CommodityId e : demanded) max_ne = std::max(max_ne, members[e].size());
  if (max_ne * points > (std::size_t{1} << 24))
    throw BoundUnsupportedError(
        "dual_ascent: instance too large (requests × points); bound it "
        "through windows or chunks instead");

  // Per-commodity budgets w_e(m). Location-invariant models need one
  // derivation; otherwise one per point.
  const bool invariant = instance.cost().location_invariant();
  std::vector<double> budget_at_origin;
  std::vector<double> budget_matrix;  // demanded-major, per point
  if (invariant) {
    budget_at_origin =
        budgets_at(instance.cost(), 0, options.max_exhaustive_commodities);
  } else {
    budget_matrix.resize(demanded.size() * points);
    for (PointId m = 0; m < points; ++m) {
      const std::vector<double> w =
          budgets_at(instance.cost(), m, options.max_exhaustive_commodities);
      for (std::size_t i = 0; i < demanded.size(); ++i)
        budget_matrix[i * points + m] = w[demanded[i]];
    }
  }

  // Across-commodity fan-out into pre-sized slots merged in commodity
  // order — bitwise deterministic for every thread count, because each
  // slot's ascent is sequential.
  std::vector<AscentOutcome> outcomes(demanded.size());
  const std::vector<double> zeros(points, 0.0);
  parallel_for(
      demanded.size(),
      [&](std::size_t i) {
        std::vector<double> budget(points);
        if (invariant)
          std::fill(budget.begin(), budget.end(),
                    budget_at_origin[demanded[i]]);
        else
          std::copy(budget_matrix.begin() +
                        static_cast<std::ptrdiff_t>(i * points),
                    budget_matrix.begin() +
                        static_cast<std::ptrdiff_t>((i + 1) * points),
                    budget.begin());
        std::vector<double> scratch(points);
        outcomes[i] = run_commodity_ascent(members[demanded[i]], request_row,
                                           inv_k, budget, points, scratch,
                                           zeros);
      },
      options.threads);

  // Assemble the certificate.
  DualAscentResult result;
  DualCertificate& cert = result.certificate;
  cert.num_requests = n;
  cert.num_commodities = s;
  cert.num_points = points;
  cert.method = "dual-ascent";
  cert.duals.resize(n);
  for (std::size_t r = 0; r < n; ++r)
    cert.duals[r].assign(
        instance.request(static_cast<RequestId>(r)).commodities.count(),
        0.0);
  double objective = 0.0;
  for (std::size_t i = 0; i < demanded.size(); ++i) {
    const auto& refs = members[demanded[i]];
    for (std::size_t j = 0; j < refs.size(); ++j)
      cert.duals[refs[j].request][refs[j].slot] = outcomes[i].freeze[j];
    objective += outcomes[i].objective;
    result.tight_facilities += outcomes[i].tight;
    // Emitted here, in commodity order after the parallel ascent, so the
    // trace is independent of the thread count. One aggregate raise per
    // commodity: config_size carries the dual count, cost the frozen sum.
    if (obs::tracing()) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kDualRaise;
      ev.request = kInvalidRequest;
      ev.commodity = demanded[i];
      ev.config_size = refs.size();
      ev.cost = outcomes[i].objective;
      obs::emit(ev);
    }
  }
  cert.objective = objective;
  result.lower_bound = objective;
  result.duals_raised = total_duals;
  OMFLP_PERF_ADD(duals_raised, total_duals);

  // Audit slack (the canonical vector of bound/certificate.hpp),
  // assembled with the bid-plane kernels: each (commodity, request) pair
  // is one clipped-bid row accumulation.
  std::vector<double> slack(points, kInf);
  std::vector<double> row(points);
  for (std::size_t i = 0; i < demanded.size(); ++i) {
    const CommodityId e = demanded[i];
    std::fill(row.begin(), row.end(), 0.0);
    for (std::size_t j = 0; j < members[e].size(); ++j) {
      kernel::accumulate_clipped_bid(row.data(),
                                     request_row[members[e][j].request],
                                     outcomes[i].freeze[j], points);
      OMFLP_PERF_ADD(bids_updated, points);
    }
    for (PointId m = 0; m < points; ++m)
      slack[m] =
          std::min(slack[m], instance.cost().singleton_cost(m, e) - row[m]);
  }
  std::fill(row.begin(), row.end(), 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double dual_sum = 0.0;
    for (double a : cert.duals[r]) dual_sum += a;
    kernel::accumulate_clipped_bid(row.data(), request_row[r], dual_sum,
                                   points);
    OMFLP_PERF_ADD(bids_updated, points);
  }
  for (PointId m = 0; m < points; ++m)
    slack[m] = std::min(slack[m], instance.cost().full_cost(m) - row[m]);
  cert.facility_slack = slack;
  result.min_slack_point =
      static_cast<PointId>(kernel::argmin_over_row(slack.data(), points));

  return result;
}

}  // namespace omflp
