#include "bound/certificate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "instance/io_detail.hpp"
#include "perf/perf_counters.hpp"
#include "support/assert.hpp"

namespace omflp {

namespace {

constexpr const char* kHeader = "OMFLP-CERT v1";

/// lhs ≤ rhs up to the relative tolerance.
bool tol_leq(double lhs, double rhs, double tol) {
  return lhs <= rhs + tol * std::max(1.0, std::abs(rhs));
}

/// a == b up to the relative tolerance.
bool tol_eq(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string describe(const char* what, PointId m, double lhs, double rhs) {
  std::ostringstream os;
  os.precision(17);
  os << what << " at point " << m << ": lhs " << lhs << " > rhs " << rhs;
  return os.str();
}

CommoditySet set_from_mask(CommodityId universe, std::uint64_t mask) {
  CommoditySet s(universe);
  while (mask) {
    const int bit = __builtin_ctzll(mask);
    s.add(static_cast<CommodityId>(bit));
    mask &= mask - 1;
  }
  return s;
}

}  // namespace

// ---- serialization ---------------------------------------------------------

void write_certificate(std::ostream& os, const DualCertificate& cert) {
  os << kHeader << '\n';
  os << "method " << cert.method << '\n';
  os << "requests " << cert.num_requests << '\n';
  os << "commodities " << cert.num_commodities << '\n';
  os << "points " << cert.num_points << '\n';
  os.precision(17);
  os << "objective " << cert.objective << '\n';
  for (const std::vector<double>& row : cert.duals) {
    os << "dual " << row.size();
    for (double a : row) os << ' ' << a;
    os << '\n';
  }
  os << "slack";
  for (double s : cert.facility_slack) os << ' ' << s;
  os << '\n';
}

std::string certificate_to_string(const DualCertificate& cert) {
  std::ostringstream os;
  write_certificate(os, cert);
  return os.str();
}

DualCertificate read_certificate(std::istream& is) {
  iodetail::LineReader reader(is, "read_certificate");

  if (reader.next("header") != kHeader)
    reader.fail("bad header, expected 'OMFLP-CERT v1'");

  DualCertificate cert;
  std::string word;

  std::istringstream method_line(reader.next("method"));
  if (!(method_line >> word >> cert.method) || word != "method")
    reader.fail("expected 'method <name>'");

  std::istringstream requests_line(reader.next("requests"));
  if (!(requests_line >> word >> cert.num_requests) || word != "requests")
    reader.fail("expected 'requests <n>'");

  std::istringstream commodities_line(reader.next("commodities"));
  if (!(commodities_line >> word >> cert.num_commodities) ||
      word != "commodities" || cert.num_commodities == 0)
    reader.fail("expected 'commodities <|S|>'");

  std::istringstream points_line(reader.next("points"));
  if (!(points_line >> word >> cert.num_points) || word != "points" ||
      cert.num_points == 0)
    reader.fail("expected 'points <|M|>'");

  std::istringstream objective_line(reader.next("objective"));
  if (!(objective_line >> word >> cert.objective) || word != "objective" ||
      !std::isfinite(cert.objective))
    reader.fail("expected 'objective <finite value>'");

  // Capped reserves: absurd declared counts (fuzzed certificates) must
  // fail at "bad dual line", never in the allocator.
  cert.duals.reserve(
      std::min<std::size_t>(cert.num_requests, std::size_t{1} << 20));
  for (std::size_t r = 0; r < cert.num_requests; ++r) {
    std::istringstream row(reader.next("dual"));
    std::size_t k = 0;
    if (!(row >> word >> k) || word != "dual" || k == 0 ||
        k > cert.num_commodities)
      reader.fail("bad dual line");
    std::vector<double> values;
    values.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      double a = 0.0;
      if (!(row >> a) || !std::isfinite(a))
        reader.fail("bad dual value");
      values.push_back(a);
    }
    cert.duals.push_back(std::move(values));
  }

  std::istringstream slack_line(reader.next("slack"));
  if (!(slack_line >> word) || word != "slack")
    reader.fail("expected 'slack <values...>'");
  cert.facility_slack.reserve(
      std::min<std::size_t>(cert.num_points, std::size_t{1} << 20));
  for (std::size_t m = 0; m < cert.num_points; ++m) {
    double s = 0.0;
    if (!(slack_line >> s) || !std::isfinite(s))
      reader.fail("bad slack value");
    cert.facility_slack.push_back(s);
  }

  if (reader.try_next())
    throw std::invalid_argument(
        "read_certificate: trailing content after slack line");
  return cert;
}

DualCertificate certificate_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_certificate(is);
}

// ---- verification ----------------------------------------------------------

namespace {

/// Per-request data the checker derives once: location, demanded
/// commodities (ascending, aligned with the certificate's dual rows) and
/// the dual sum A_r.
struct CheckedRequest {
  PointId location = 0;
  std::vector<CommodityId> commodities;
  double dual_sum = 0.0;
};

/// Exhaustive path: constraint (D) for every configuration σ ⊆ S at every
/// point. Requires |S| ≤ 63 (configurations as bitmasks).
std::optional<std::string> check_exhaustive(
    const Instance& instance, const DualCertificate& cert,
    const std::vector<CheckedRequest>& reqs, double tol) {
  const std::size_t n = reqs.size();
  const std::size_t points = instance.metric().num_points();
  const CommodityId s = cert.num_commodities;

  std::vector<std::uint64_t> masks(n, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (CommodityId e : reqs[r].commodities)
      masks[r] |= std::uint64_t{1} << e;

  // Distances d(m, r), n per point; recomputed from the metric directly
  // (no DistanceOracle — the checker shares nothing with the bounder).
  std::vector<double> dist(n * points);
  for (std::size_t r = 0; r < n; ++r)
    for (PointId m = 0; m < points; ++m)
      dist[r * points + m] =
          instance.metric().distance(reqs[r].location, m);
  OMFLP_PERF_ADD(distance_lookups, n * points);

  const std::uint64_t num_configs = std::uint64_t{1} << s;
  for (std::uint64_t mask = 1; mask < num_configs; ++mask) {
    const CommoditySet config = set_from_mask(s, mask);
    for (PointId m = 0; m < points; ++m) {
      double lhs = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        std::uint64_t inter = mask & masks[r];
        if (!inter) continue;
        double sum = 0.0;
        while (inter) {
          const int bit = __builtin_ctzll(inter);
          // Index of commodity `bit` within s_r = number of demanded
          // commodities below it (dual rows are in ascending order).
          const std::uint64_t below =
              masks[r] & ((std::uint64_t{1} << bit) - 1);
          sum += cert.duals[r][static_cast<std::size_t>(
              __builtin_popcountll(below))];
          inter &= inter - 1;
        }
        const double clipped = sum - dist[r * points + m];
        if (clipped > 0.0) lhs += clipped;
      }
      const double rhs = instance.cost().open_cost(m, config);
      OMFLP_PERF_ADD(verifier_checks, 1);
      if (!tol_leq(lhs, rhs, tol))
        return describe(
            ("dual constraint violated for config " + config.to_string())
                .c_str(),
            m, lhs, rhs);
    }
  }
  return std::nullopt;
}

/// Structured path: the split decomposition P_m(e) (see header) checked
/// against spot-verified additive or size-only cost structure.
std::optional<std::string> check_structured(
    const Instance& instance, const DualCertificate& cert,
    const std::vector<CheckedRequest>& reqs, double tol) {
  const std::size_t n = reqs.size();
  const std::size_t points = instance.metric().num_points();
  const CommodityId s = cert.num_commodities;
  const FacilityCostModel& cost = instance.cost();

  // Demanded commodities and, per commodity, the requests demanding it
  // (with their dual value and split divisor |s_r|).
  std::vector<std::vector<std::pair<std::size_t, double>>> by_commodity(s);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < reqs[r].commodities.size(); ++i)
      by_commodity[reqs[r].commodities[i]].push_back({r, cert.duals[r][i]});

  // P[m] per demanded commodity, computed one commodity at a time (O(|M|)
  // transient memory). The split uses u_{r,e} = 1/|s_r|.
  std::vector<std::vector<double>> profile;  // indexed by demanded slot
  std::vector<CommodityId> demanded;
  for (CommodityId e = 0; e < s; ++e) {
    if (by_commodity[e].empty()) continue;
    std::vector<double> p(points, 0.0);
    for (const auto& [r, dual] : by_commodity[e]) {
      const double inv_k =
          1.0 / static_cast<double>(reqs[r].commodities.size());
      for (PointId m = 0; m < points; ++m) {
        const double scaled =
            instance.metric().distance(reqs[r].location, m) * inv_k;
        const double clipped = dual - scaled;
        if (clipped > 0.0) p[m] += clipped;
      }
      OMFLP_PERF_ADD(distance_lookups, points);
    }
    profile.push_back(std::move(p));
    demanded.push_back(e);
  }

  const CommoditySet full = CommoditySet::full_set(s);
  for (PointId m = 0; m < points; ++m) {
    // Path A: additive costs f^σ_m = Σ_{e∈σ} w_e(m).
    if (const auto weights = cost.additive_weights(m)) {
      if (weights->size() != s)
        return "additive_weights reports the wrong universe size";
      // Spot-check the additivity claim on concrete configurations:
      // every singleton, the full set, and a half prefix.
      double total = 0.0;
      for (CommodityId e = 0; e < s; ++e) {
        const double w = (*weights)[e];
        if (!(w >= 0.0)) return "additive_weights reports a negative weight";
        total += w;
        OMFLP_PERF_ADD(verifier_checks, 1);
        if (!tol_eq(cost.singleton_cost(m, e), w, tol))
          return describe("additive_weights disagrees with singleton cost",
                          m, cost.singleton_cost(m, e), w);
      }
      if (!tol_eq(cost.open_cost(m, full), total, tol))
        return describe("additive_weights disagrees with full cost", m,
                        cost.open_cost(m, full), total);
      CommoditySet prefix(s);
      double prefix_total = 0.0;
      for (CommodityId e = 0; e < (s + 1) / 2; ++e) {
        prefix.add(e);
        prefix_total += (*weights)[e];
      }
      if (!prefix.empty() &&
          !tol_eq(cost.open_cost(m, prefix), prefix_total, tol))
        return describe("additive_weights disagrees with prefix cost", m,
                        cost.open_cost(m, prefix), prefix_total);

      for (std::size_t i = 0; i < demanded.size(); ++i) {
        OMFLP_PERF_ADD(verifier_checks, 1);
        if (!tol_leq(profile[i][m], (*weights)[demanded[i]], tol))
          return describe("commodity budget exceeded", m, profile[i][m],
                          (*weights)[demanded[i]]);
      }
      continue;
    }

    // Path B: size-only costs g_m(k).
    if (cost.cost_by_size(m, 1).has_value()) {
      std::vector<double> g(static_cast<std::size_t>(s) + 1, 0.0);
      for (CommodityId k = 1; k <= s; ++k) {
        const auto gk = cost.cost_by_size(m, k);
        if (!gk || !(*gk >= 0.0))
          return "cost_by_size is partial or negative";
        g[k] = *gk;
      }
      // Spot-check the size-only claim against open_cost on prefixes.
      for (CommodityId k : {CommodityId{1}, static_cast<CommodityId>(s / 2),
                            s}) {
        if (k == 0) continue;
        CommoditySet prefix(s);
        for (CommodityId e = 0; e < k; ++e) prefix.add(e);
        OMFLP_PERF_ADD(verifier_checks, 1);
        if (!tol_eq(cost.open_cost(m, prefix), g[k], tol))
          return describe("cost_by_size disagrees with open_cost", m,
                          cost.open_cost(m, prefix), g[k]);
      }
      // Suffix minimum: a configuration of size k ≥ j containing only j
      // demanded commodities still has rhs f = g(k), so the top-j profile
      // sum must clear min over k ≥ j (guards non-monotone g).
      std::vector<double> suffix_min(g.size(), 0.0);
      double running = std::numeric_limits<double>::infinity();
      for (std::size_t k = g.size() - 1; k >= 1; --k) {
        running = std::min(running, g[k]);
        suffix_min[k] = running;
      }
      std::vector<double> values;
      values.reserve(demanded.size());
      for (std::size_t i = 0; i < demanded.size(); ++i)
        values.push_back(profile[i][m]);
      std::sort(values.begin(), values.end(), std::greater<double>());
      double top_sum = 0.0;
      for (std::size_t j = 1; j <= values.size(); ++j) {
        top_sum += values[j - 1];
        OMFLP_PERF_ADD(verifier_checks, 1);
        if (!tol_leq(top_sum, suffix_min[j], tol))
          return describe("size-only budget exceeded", m, top_sum,
                          suffix_min[j]);
      }
      continue;
    }

    return "cost model is neither additive nor size-only and the universe "
           "is too large for exhaustive verification; certificate cannot "
           "be verified";
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> verify_certificate(
    const Instance& instance, const DualCertificate& cert,
    const VerifyCertificateOptions& options) {
  const double tol = options.tolerance;
  const std::size_t n = instance.num_requests();
  const std::size_t points = instance.metric().num_points();
  const CommodityId s = instance.num_commodities();

  // ---- structural checks ---------------------------------------------------
  if (cert.num_requests != n) return "certificate request count mismatch";
  if (cert.num_commodities != s)
    return "certificate commodity universe mismatch";
  if (cert.num_points != points) return "certificate point count mismatch";
  if (cert.duals.size() != n) return "certificate dual row count mismatch";
  if (cert.facility_slack.size() != points)
    return "certificate slack vector length mismatch";
  if (!std::isfinite(cert.objective)) return "certificate objective not finite";

  const double dual_floor = -tol * std::max(1.0, std::abs(cert.objective));
  std::vector<CheckedRequest> reqs(n);
  double objective = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const Request& request = instance.request(static_cast<RequestId>(r));
    reqs[r].location = request.location;
    reqs[r].commodities = request.commodities.to_vector();
    if (cert.duals[r].size() != reqs[r].commodities.size())
      return "dual row length does not match the request's demand set";
    for (double a : cert.duals[r]) {
      if (!std::isfinite(a)) return "non-finite dual value";
      if (a < dual_floor) return "negative dual value";
      reqs[r].dual_sum += a;
    }
    objective += reqs[r].dual_sum;
  }
  if (!tol_eq(objective, cert.objective, tol))
    return "certificate objective does not equal the dual sum";

  // ---- dual feasibility ----------------------------------------------------
  bool exhaustive = false;
  if (s <= 40) {
    const std::uint64_t configs = std::uint64_t{1} << s;
    const std::uint64_t per_config =
        static_cast<std::uint64_t>(std::max<std::size_t>(n, 1)) *
        static_cast<std::uint64_t>(points);
    exhaustive = configs <= options.max_exhaustive_work / per_config;
  }
  if (auto violation = exhaustive
                           ? check_exhaustive(instance, cert, reqs, tol)
                           : check_structured(instance, cert, reqs, tol))
    return violation;

  // ---- slack audit ---------------------------------------------------------
  // Recompute the canonical per-point slack (singleton constraints over
  // demanded commodities plus the full-configuration constraint) and
  // require it to match the stored vector: tampering with either side is
  // caught here even when the tampered value stays feasible.
  std::vector<double> slack(points,
                            std::numeric_limits<double>::infinity());
  std::vector<double> row(points);
  std::vector<std::vector<std::pair<std::size_t, double>>> by_commodity(s);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < reqs[r].commodities.size(); ++i)
      by_commodity[reqs[r].commodities[i]].push_back({r, cert.duals[r][i]});
  for (CommodityId e = 0; e < s; ++e) {
    if (by_commodity[e].empty()) continue;
    std::fill(row.begin(), row.end(), 0.0);
    for (const auto& [r, dual] : by_commodity[e]) {
      for (PointId m = 0; m < points; ++m) {
        const double clipped =
            dual - instance.metric().distance(reqs[r].location, m);
        if (clipped > 0.0) row[m] += clipped;
      }
      OMFLP_PERF_ADD(distance_lookups, points);
    }
    for (PointId m = 0; m < points; ++m)
      slack[m] =
          std::min(slack[m], instance.cost().singleton_cost(m, e) - row[m]);
  }
  std::fill(row.begin(), row.end(), 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (PointId m = 0; m < points; ++m) {
      const double clipped =
          reqs[r].dual_sum -
          instance.metric().distance(reqs[r].location, m);
      if (clipped > 0.0) row[m] += clipped;
    }
    OMFLP_PERF_ADD(distance_lookups, points);
  }
  for (PointId m = 0; m < points; ++m) {
    slack[m] = std::min(slack[m], instance.cost().full_cost(m) - row[m]);
    OMFLP_PERF_ADD(verifier_checks, 1);
    if (slack[m] < -tol * std::max(1.0, std::abs(slack[m])))
      return describe("negative audited slack", m, -slack[m], 0.0);
    if (!tol_eq(slack[m], cert.facility_slack[m], tol))
      return describe("stored facility slack disagrees with recomputation",
                      m, cert.facility_slack[m], slack[m]);
  }

  return std::nullopt;
}

}  // namespace omflp
