// BoundRegistry — named OPT lower-bound methods.
//
// Maps a stable string name to a bound factory over an Instance, the same
// pattern as the algorithm/scenario registries: the `omflp bound` verb,
// tests and docs all pull from one roster. Every outcome is *certified*:
// a proven lower bound on OPT backed by an exact solver, an exact
// generator certificate, or a dual certificate that passed
// verify_certificate. Uncertified bounds are never produced — methods
// throw instead, so a registry bound can always be trusted or is loudly
// absent.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bound/certificate.hpp"
#include "bound/dual_ascent.hpp"
#include "instance/instance.hpp"

namespace omflp {

struct BoundOutcome {
  /// Certified lower bound on OPT(instance).
  double lower = 0.0;
  /// True when the bound equals OPT exactly (exact solver / exact
  /// generator certificate), not merely a lower bound.
  bool exact = false;
  /// Method actually used (e.g. "dual-ascent", "exhaustive(...)").
  std::string method;
  /// The verified dual certificate, when the method produces one.
  std::optional<DualCertificate> certificate;
};

struct BoundMethodSpec {
  std::string name;
  std::string description;
  /// Computes a certified bound or throws (BoundUnsupportedError when the
  /// instance's structure is out of scope, std::logic_error when a
  /// produced certificate fails verification).
  std::function<BoundOutcome(const Instance&, const DualAscentOptions&)>
      make;
};

class BoundRegistry {
 public:
  /// Registers a method; throws std::invalid_argument on an empty or
  /// duplicate name or a missing factory.
  void add(BoundMethodSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument listing the known names when absent.
  const BoundMethodSpec& spec(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return specs_.size(); }

  BoundOutcome make(const std::string& name, const Instance& instance,
                    const DualAscentOptions& options = {}) const;

 private:
  std::map<std::string, BoundMethodSpec> specs_;
};

/// Registry with the standard roster (shared, initialized on first use,
/// safe for concurrent readers):
///   dual-ascent — the native bounder + verify_certificate (always
///                 verified; a checker failure throws);
///   exact-small — exhaustive exact solver within ExactSolverLimits
///                 (throws BoundUnsupportedError beyond them);
///   certificate — the generator's exact OptCertificate (throws
///                 BoundUnsupportedError when absent or inexact);
///   chunked     — max over contiguous-chunk dual-ascent bounds
///                 (bound_instance_chunked; any instance size);
///   auto        — strongest applicable: certificate, then exact-small,
///                 then dual-ascent, then chunked.
const BoundRegistry& default_bound_registry();

}  // namespace omflp
