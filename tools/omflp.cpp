// omflp — the scenario-engine command line.
//
//   omflp list                          catalog of scenarios and algorithms
//   omflp run    --scenario S ...       run one (scenario, algorithm, seed)
//   omflp sweep  --scenarios a,b ...    mass-run a cross-product, emit CSV
//   omflp replay FILE ...               re-run a saved instance trace
//   omflp stream --scenario S ...       process a dynamic event stream
//   omflp serve  --tenants K ...        drive the sharded multi-tenant engine
//   omflp explain TRACELOG ...          replay a decision trace, render causality
//   omflp bound  --scenario S ...       certified OPT lower bound
//   omflp bench                         run the perf suite, emit BENCH json
//   omflp compare OLD NEW               diff two BENCH json files
//
// Examples:
//   omflp run --scenario clustered --algorithm pd --seed 3 --set clusters=8
//   omflp run --scenario theorem2 --save trace.omflp
//   omflp replay trace.omflp --algorithm rand --seed 7
//   omflp sweep --scenarios all --algorithms pd,rand --seeds 8
//               ... --csv sweep.csv --json sweep.json
//   omflp stream --scenario churn-uniform --algorithm pd --save churn.omflp
//   omflp stream --trace churn.omflp --algorithm greedy --batch 4096
//   omflp serve --tenants 16 --mix mixed --algorithm pd --seq-baseline
//   omflp bound --scenario theorem2 --algorithm pd --assert-paper-bound
//   omflp bound --stream churn-uniform --window 4096 --algorithm pd
//   omflp bench --quick --out BENCH_default.json
//   omflp compare benchmarks/BENCH_baseline.json BENCH_default.json
//               ... --threshold 1.15
//
// Every run is a deterministic function of (scenario, parameters, seed):
// `replay` on a trace saved by `run --save` reproduces the same total
// cost exactly, as does re-running `run` with the same arguments; the
// same holds for `stream --trace` on a trace saved by `stream --save`.
// `stream --trace` reads the trace in bounded-memory batches and compacts
// retired ledger records, so million-event traces process in O(active
// set + batch) resident state.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/competitive.hpp"
#include "bound/registry.hpp"
#include "bound/window.hpp"
#include "core/stream_runner.hpp"
#include "engine/sharded_engine.hpp"
#include "instance/io.hpp"
#include "instance/stream_io.hpp"
#include "instance/tracelog_io.hpp"
#include "obs/explain.hpp"
#include "obs/metrics_sampler.hpp"
#include "obs/trace_sink.hpp"
#include "perf/bench_compare.hpp"
#include "perf/bench_suite.hpp"
#include "recover/checkpoint_store.hpp"
#include "recover/fault_plan.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/stream_registry.hpp"
#include "scenario/sweep.hpp"
#include "solution/verifier.hpp"
#include "support/atomic_file.hpp"
#include "support/parse.hpp"
#include "support/table.hpp"

namespace {

using namespace omflp;

int usage(std::ostream& os, int exit_code) {
  os << "usage: omflp <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                      list scenarios and algorithms\n"
        "  run                       run one scenario under one algorithm\n"
        "    --scenario NAME           required\n"
        "    --algorithm NAME          default: pd\n"
        "    --seed N                  default: 1\n"
        "    --set key=value           override a scenario parameter "
        "(repeatable)\n"
        "    --save FILE               save the generated instance trace\n"
        "  sweep                     run a (scenario x algorithm x seed) "
        "cross-product\n"
        "    --scenarios a,b|all       default: all\n"
        "    --algorithms a,b|all      default: all\n"
        "    --seeds N                 default: 8\n"
        "    --seed-base N             default: 1\n"
        "    --set key=value           override where declared "
        "(repeatable)\n"
        "    --threads N               default: hardware\n"
        "    --ratio                   compute certified lower bounds "
        "(fills the lower /\n"
        "                              certified_ratio / gap columns)\n"
        "    --csv FILE                write per-cell CSV (default: "
        "stdout)\n"
        "    --json FILE               also write per-cell JSON\n"
        "  replay FILE               re-run a saved instance trace\n"
        "    --algorithm NAME          default: pd\n"
        "    --seed N                  default: 1\n"
        "  stream                    process a dynamic event stream "
        "(arrivals + deletions)\n"
        "    --scenario NAME           generate a stream scenario, or\n"
        "    --trace FILE              stream a saved trace from disk "
        "(bounded memory)\n"
        "    --algorithm NAME          default: pd\n"
        "    --seed N                  default: 1\n"
        "    --set key=value           override a scenario parameter "
        "(repeatable)\n"
        "    --save FILE               save the generated stream trace\n"
        "    --batch N                 events per IO/compaction batch "
        "(default: 8192)\n"
        "    --no-verify               skip the incremental stream "
        "verifier\n"
        "    --overflow POLICY         reassign | reject at a full "
        "facility (capacitated streams; default: reassign)\n"
        "    --trace-out FILE          write the decision trace "
        "(OMFLP-TRACELOG v1 jsonl)\n"
        "    --latency-csv FILE        write per-batch latency CSV "
        "(batch,events,batch_ns,...)\n"
        "    --ratio                   force the OPT(surviving) ratio "
        "bracket (works with\n"
        "                              --trace too: the surviving set is "
        "rebuilt from the ledger)\n"
        "  bound                     certified lower bound on OPT (verified "
        "dual certificates)\n"
        "    --scenario NAME           bound a static scenario instance, "
        "or\n"
        "    --instance FILE           a saved instance trace, or\n"
        "    --stream NAME             a stream scenario (windowed "
        "decomposition), or\n"
        "    --trace FILE              a saved stream trace (bounded "
        "memory)\n"
        "    --seed N                  default: 1\n"
        "    --set key=value           override a scenario parameter "
        "(repeatable)\n"
        "    --method NAME             static bound method (default: auto; "
        "see src/bound/registry.hpp)\n"
        "    --window N                arrivals per window/chunk "
        "(default: 4096)\n"
        "    --algorithm NAME          also run the algorithm and report "
        "the certified ratio\n"
        "    --max-certified-ratio X   exit 1 when cost / lower exceeds "
        "X\n"
        "    --assert-paper-bound      exit 1 when the certified ratio "
        "exceeds Theorem 4's\n"
        "                              15*sqrt(|S|)*H_n (meaningful for "
        "--algorithm pd)\n"
        "    --save-cert FILE          write the dual certificate "
        "(static bounds)\n"
        "  serve                     drive the sharded multi-tenant stream "
        "engine\n"
        "    --tenants K               default: 8\n"
        "    --mix NAME                workload mix (default: mixed; see "
        "`omflp list`)\n"
        "    --algorithm NAME          serve every tenant with this "
        "algorithm (default: pd)\n"
        "    --seed N                  default: 1\n"
        "    --shards N                default: min(tenants, threads)\n"
        "    --threads N               default: hardware / OMFLP_THREADS\n"
        "    --batch N                 events per tenant per round "
        "(default: 2048)\n"
        "    --scale X                 scale every tenant's workload size "
        "(default: 1)\n"
        "    --no-verify               skip the per-tenant incremental "
        "verifiers\n"
        "    --capacity N              uniform per-point facility capacity "
        "for every tenant (default: 0 = scenario's own)\n"
        "    --overflow POLICY         reassign | reject at a full "
        "facility (default: reassign)\n"
        "    --seq-baseline            also run the tenants sequentially "
        "and report the speedup\n"
        "    --metrics-out FILE        live per-shard telemetry "
        "(.jsonl/.json -> JSONL, else CSV)\n"
        "    --sample-every N          rounds between telemetry samples "
        "(default: 1)\n"
        "    --trace-out FILE          write the merged decision trace "
        "(tenant-order, deterministic)\n"
        "    --checkpoint-dir DIR      restore from / publish OMFLP-CKPT "
        "generations in DIR\n"
        "    --checkpoint-every N      rounds between checkpoint "
        "generations (default: 0 = restore only)\n"
        "    --fault-plan SPEC         deterministic crash injection, e.g. "
        "crashes=2,seed=7,gap=8,torn=1\n"
        "    --placement \"0,1,...\"     explicit tenant->shard placement "
        "(migration; default round-robin)\n"
        "    --report-out FILE         write the deterministic per-tenant "
        "report (atomic)\n"
        "  explain TRACELOG          replay a decision trace and render "
        "the causal chain\n"
        "    --facility N              why did facility N open (bids, "
        "tightness, rollbacks)\n"
        "    --request N               every event involving request N\n"
        "    --recover                 accept a torn/corrupt tracelog and "
        "use its valid prefix\n"
        "  bench                     run the perf suite, write BENCH json\n"
        "    --out FILE                default: BENCH_<suite>.json\n"
        "    --quick                   fewer warmup/timed trials (CI "
        "smoke)\n"
        "    --trials N                override timed trials per case\n"
        "    --warmup N                override warmup runs per case\n"
        "  compare OLD NEW           diff two BENCH json files\n"
        "    --threshold X             regression gate on ns/op "
        "(default: 1.10)\n"
        "    --report-only             always exit 0 (CI trend "
        "reporting)\n"
        "    --fail-on-missing         treat baseline cases missing from "
        "NEW as regressions\n";
  return exit_code;
}

/// Pops the value of `--flag value`; throws on a missing value.
std::string take_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size())
    throw std::invalid_argument("missing value after " + args[i]);
  return args[++i];
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

// Strict parsers from support/parse.hpp: negative input no longer wraps
// ("--trials -5" used to become 2^64−5 through strtoull) and ERANGE
// overflow in either direction is rejected with a clear error.
void parse_set(const std::string& text,
               std::map<std::string, double>& overrides) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0)
    throw std::invalid_argument("--set expects key=value, got '" + text +
                                "'");
  const std::string key = text.substr(0, eq);
  overrides[key] = parse_double_arg(text.substr(eq + 1), "--set " + key);
}

OverflowPolicy parse_overflow_arg(const std::string& value) {
  if (value == "reassign") return OverflowPolicy::kReassign;
  if (value == "reject") return OverflowPolicy::kReject;
  throw std::invalid_argument(
      "--overflow expects reassign or reject, got '" + value + "'");
}

// ------------------------------------------------------------------ list ---

int cmd_list() {
  const ScenarioRegistry& scenarios = default_scenario_registry();
  const StreamScenarioRegistry& streams = default_stream_scenario_registry();
  const AlgorithmRegistry& algorithms = default_algorithm_registry();

  std::cout << "scenarios (" << scenarios.size() << "):\n";
  for (const std::string& name : scenarios.names()) {
    const ScenarioSpec& spec = scenarios.spec(name);
    std::cout << "  " << name << " — " << spec.description << "\n";
    for (const ScenarioParam& param : spec.params)
      std::cout << "      " << param.name << " = " << param.value << "  ("
                << param.description << ")\n";
  }
  std::cout << "\nstream scenarios (" << streams.size()
            << ", for `omflp stream`):\n";
  for (const std::string& name : streams.names()) {
    const StreamScenarioSpec& spec = streams.spec(name);
    std::cout << "  " << name << " — " << spec.description << "\n";
    for (const ScenarioParam& param : spec.params)
      std::cout << "      " << param.name << " = " << param.value << "  ("
                << param.description << ")\n";
  }
  const WorkloadMixRegistry& mixes = default_workload_mix_registry();
  std::cout << "\nworkload mixes (" << mixes.size()
            << ", for `omflp serve`):\n";
  for (const std::string& name : mixes.names()) {
    const WorkloadMixSpec& spec = mixes.spec(name);
    std::cout << "  " << name << " — " << spec.description
              << "\n      hotness " << spec.hotness << "; profiles:";
    for (const TenantProfile& profile : spec.profiles)
      std::cout << " " << profile.scenario << " (w=" << profile.weight
                << ")";
    std::cout << "\n";
  }
  std::cout << "\nalgorithms (" << algorithms.size() << "):\n";
  for (const std::string& name : algorithms.names()) {
    const AlgorithmSpec& spec = algorithms.spec(name);
    std::cout << "  " << name << (spec.randomized ? " [randomized]" : "")
              << " — " << spec.description << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------- run ---

void report_run(const Instance& instance, const std::string& algorithm_name,
                std::uint64_t seed) {
  // The workload seed and the algorithm's coin seed are decorrelated (see
  // derive_algorithm_seed); replays with the same --seed stay identical.
  auto algorithm = default_algorithm_registry().make(
      algorithm_name, derive_algorithm_seed(seed));
  const SolutionLedger ledger = run_online(*algorithm, instance);
  if (const auto violation = verify_solution(instance, ledger))
    throw std::logic_error("invalid solution: " + violation->what);

  std::cout.precision(17);
  std::cout << "instance   " << instance.name() << " (n="
            << instance.num_requests() << ", |S|="
            << instance.num_commodities() << ", |M|="
            << instance.metric().num_points() << ")\n"
            << "algorithm  " << algorithm->name() << " (seed " << seed
            << ")\n"
            << "total      " << ledger.total_cost() << "\n"
            << "  opening    " << ledger.opening_cost() << "\n"
            << "  connection " << ledger.connection_cost() << "\n"
            << "facilities " << ledger.num_facilities() << " ("
            << ledger.num_small_facilities() << " small, "
            << ledger.num_large_facilities() << " large)\n";
  if (ledger.capacitated()) {
    const double shed_rate =
        instance.num_requests() > 0
            ? static_cast<double>(ledger.num_shed_requests()) /
                  static_cast<double>(instance.num_requests())
            : 0.0;
    std::cout << "admission  "
              << overflow_policy_tag(ledger.overflow_policy()) << ": "
              << ledger.num_shed_requests() << " requests shed ("
              << shed_rate * 100.0 << "% of requests), "
              << ledger.num_rejected_commodities() << " items rejected, "
              << ledger.num_spilled_assignments()
              << " assignments spilled\n";
  }
  OptEstimateOptions opt_options;
  opt_options.compute_lower = true;
  const OptEstimate opt = estimate_opt(instance, opt_options);
  std::cout << "opt        " << opt.cost << " (" << opt.method
            << (opt.exact ? ", exact" : ", upper bound") << ")\n";
  if (opt.lower_certified)
    std::cout << "opt lower  " << opt.lower << " (" << opt.lower_method
              << ", certified)\n";
  if (opt.lower_certified && opt.lower > 0.0) {
    // True ratio bracket: cost/upper under-estimates, cost/lower
    // (certified) over-estimates.
    std::cout << "ratio      [" << ledger.total_cost() / opt.cost << ", "
              << ledger.total_cost() / opt.lower
              << "]  (estimated, certified)\n";
  } else {
    std::cout << "ratio      " << ledger.total_cost() / opt.cost << "\n";
  }
}

int cmd_run(const std::vector<std::string>& args) {
  std::string scenario;
  std::string algorithm = "pd";
  std::string save_path;
  std::uint64_t seed = 1;
  std::map<std::string, double> overrides;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenario") scenario = take_value(args, i);
    else if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed") seed = parse_u64_arg(take_value(args, i), "--seed");
    else if (args[i] == "--set") parse_set(take_value(args, i), overrides);
    else if (args[i] == "--save") save_path = take_value(args, i);
    else throw std::invalid_argument("run: unknown option " + args[i]);
  }
  if (scenario.empty())
    throw std::invalid_argument("run: --scenario is required");

  const Instance instance =
      default_scenario_registry().make(scenario, seed, overrides);
  if (!save_path.empty()) {
    AtomicFileWriter file(save_path);
    write_instance(file.stream(), instance);
    file.commit();
    std::cout << "saved      " << save_path << "\n";
  }
  report_run(instance, algorithm, seed);
  return 0;
}

// ---------------------------------------------------------------- replay ---

int cmd_replay(const std::vector<std::string>& args) {
  std::string path;
  std::string algorithm = "pd";
  std::uint64_t seed = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed") seed = parse_u64_arg(take_value(args, i), "--seed");
    else if (!args[i].empty() && args[i][0] != '-' && path.empty())
      path = args[i];
    else throw std::invalid_argument("replay: unknown option " + args[i]);
  }
  if (path.empty())
    throw std::invalid_argument("replay: an instance file is required");

  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  const Instance instance = read_instance(file);
  report_run(instance, algorithm, seed);
  return 0;
}

// ---------------------------------------------------------------- stream ---

// The surviving set rebuilt from the ledger: compaction only ever drops
// all-retired prefixes, so every still-active record is resident — this
// works identically for materialized scenarios and bounded-memory trace
// runs.
Instance surviving_from_ledger(const SolutionLedger& ledger,
                               const MetricPtr& metric,
                               const CostModelPtr& cost,
                               const std::string& name) {
  std::vector<Request> requests;
  requests.reserve(ledger.num_active_requests());
  for (const RequestRecord& record : ledger.request_records())
    if (record.active()) requests.push_back(record.request);
  return Instance(metric, cost, std::move(requests), name + "/surviving");
}

void report_stream(const std::string& stream_name,
                   const OnlineAlgorithm& algorithm, std::uint64_t seed,
                   const StreamRunResult& result, bool verified,
                   const MetricPtr& metric, const CostModelPtr& cost,
                   bool force_ratio) {
  const SolutionLedger& ledger = result.ledger;
  std::cout.precision(17);
  std::cout << "stream     " << stream_name << " (events=" << result.events
            << ", arrivals=" << result.arrivals << ", departures="
            << result.departures << ", expiries=" << result.lease_expiries
            << ", |S|=" << ledger.cost_model().num_commodities() << ", |M|="
            << ledger.metric().num_points() << ")\n"
            << "algorithm  " << algorithm.name() << " (seed " << seed
            << ")\n"
            << "throughput " << result.events_per_sec() << " events/s ("
            << result.run_ns / 1e6 << " ms)\n"
            << "gross      " << ledger.total_cost() << "\n"
            << "  opening    " << ledger.opening_cost() << "\n"
            << "  connection " << ledger.connection_cost() << "\n"
            << "active     " << ledger.active_cost() << " ("
            << ledger.num_active_requests() << " surviving requests)\n"
            << "facilities " << ledger.num_facilities() << " ("
            << ledger.num_small_facilities() << " small, "
            << ledger.num_large_facilities() << " large)\n"
            << "memory     peak " << result.peak_resident_records
            << " resident records (peak active " << result.peak_active
            << ")\n";
  if (ledger.capacitated()) {
    const double shed_rate =
        result.arrivals > 0
            ? static_cast<double>(ledger.num_shed_requests()) /
                  static_cast<double>(result.arrivals)
            : 0.0;
    std::cout << "admission  " << overflow_policy_tag(ledger.overflow_policy())
              << ": " << ledger.num_shed_requests() << " requests shed ("
              << shed_rate * 100.0 << "% of arrivals), "
              << ledger.num_rejected_commodities() << " items rejected, "
              << ledger.num_spilled_assignments() << " assignments spilled\n";
  }
  if (verified)
    std::cout << "verified   active-interval ledger OK\n";

  // OPT on the surviving set — the denominator of the dynamic competitive
  // ratio — estimated automatically for small surviving sets or on
  // request (--ratio). Beyond the local-search limit the bracket comes
  // from cheap certified endpoints instead: upper = the best
  // single-full-facility solution (open S at one point, connect
  // everyone — feasible by construction), lower = the chunked dual-ascent
  // bound, so even million-event traces get a [lower, upper] OPT bracket
  // in bounded memory.
  constexpr std::size_t kAutoRatioLimit = 2048;
  constexpr std::size_t kLocalSearchLimit = 8192;
  if (force_ratio || ledger.num_active_requests() <= kAutoRatioLimit) {
    const Instance surviving =
        surviving_from_ledger(ledger, metric, cost, stream_name);
    if (surviving.num_requests() > 0) {
      OptEstimate opt;
      if (surviving.num_requests() <= kLocalSearchLimit) {
        OptEstimateOptions opt_options;
        opt_options.compute_lower = true;
        opt = estimate_opt(surviving, opt_options);
      } else {
        opt.cost = kInfiniteDistance;
        const CommoditySet full =
            CommoditySet::full_set(cost->num_commodities());
        for (PointId m = 0; m < metric->num_points(); ++m) {
          double candidate = cost->open_cost(m, full);
          for (const Request& r : surviving.requests())
            candidate += metric->distance(m, r.location);
          if (candidate < opt.cost) opt.cost = candidate;
        }
        opt.exact = false;
        opt.method = "single-full-facility";
        try {
          WindowBoundOptions wopt;
          const ChunkedBound chunked =
              bound_instance_chunked(surviving, wopt);
          opt.lower = chunked.lower;
          opt.lower_certified = true;
          opt.lower_method = "dual-ascent/chunked(" +
                             std::to_string(chunked.chunks) + ")";
        } catch (const BoundUnsupportedError&) {
          opt.lower_method = "unsupported";
        }
      }
      std::cout << "opt(surv)  " << opt.cost << " (" << opt.method
                << (opt.exact ? ", exact" : ", upper bound") << ")\n";
      if (opt.lower_certified)
        std::cout << "lb(surv)   " << opt.lower << " (" << opt.lower_method
                  << ", certified)\n";
      if (opt.lower_certified && opt.lower > 0.0) {
        std::cout << "ratio      [" << ledger.active_cost() / opt.cost
                  << ", " << ledger.active_cost() / opt.lower
                  << "]  (estimated, certified — active cost vs OPT on "
                     "the surviving set)\n";
      } else {
        std::cout << "ratio      " << ledger.active_cost() / opt.cost
                  << "  (active cost vs OPT on the surviving set)\n";
      }
    }
  }
}

// run_stream with the observability taps of this CLI: a decision-trace
// writer installed around (only) the session stepping, and a per-batch
// latency CSV. Falls back to the plain runner when neither tap is
// requested, so the untapped path is exactly the library path.
StreamRunResult run_stream_observed(OnlineAlgorithm& algorithm,
                                    EventSource& source,
                                    const StreamRunOptions& options,
                                    const std::string& trace_out,
                                    const std::string& latency_csv) {
  if (trace_out.empty() && latency_csv.empty())
    return run_stream(algorithm, source, options);

  // Both taps stream into staging files and are published atomically on
  // success; a crash or exception mid-run abandons the temp files and
  // leaves any previous artifact intact.
  std::optional<AtomicFileWriter> trace_file;
  std::optional<TraceLogWriter> writer;
  std::optional<TraceScope> scope;
  if (!trace_out.empty()) {
    trace_file.emplace(trace_out);
    writer.emplace(trace_file->stream());
    scope.emplace(*writer);
  }
  std::optional<AtomicFileWriter> latency_file;
  if (!latency_csv.empty()) {
    latency_file.emplace(latency_csv);
    latency_file->stream()
        << "batch,events,total_events,batch_ns,events_per_sec\n";
  }

  StreamSession session(algorithm, source, options);
  std::uint64_t batch_index = 0;
  std::uint64_t total_events = 0;
  while (true) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t processed = session.step_batch();
    if (processed == 0) break;
    const double batch_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    total_events += processed;
    if (latency_file)
      latency_file->stream()
          << batch_index << ',' << processed << ',' << total_events << ','
          << batch_ns << ','
          << (batch_ns > 0.0
                  ? static_cast<double>(processed) * 1e9 / batch_ns
                  : 0.0)
          << '\n';
    ++batch_index;
  }
  // Uninstall before finish()/reporting so later analysis passes (opt
  // estimation re-runs dual ascent) do not leak into the trace.
  scope.reset();
  if (writer) {
    writer->finish();
    trace_file->commit();
    std::cout << "trace      " << writer->events_written() << " events -> "
              << trace_out << "\n";
  }
  if (latency_file) {
    latency_file->commit();
    std::cout << "latency    " << batch_index << " batch samples -> "
              << latency_csv << "\n";
  }
  return session.finish();
}

int cmd_stream(const std::vector<std::string>& args) {
  std::string scenario;
  std::string trace_path;
  std::string algorithm = "pd";
  std::string save_path;
  std::string trace_out;
  std::string latency_csv;
  std::uint64_t seed = 1;
  std::map<std::string, double> overrides;
  StreamRunOptions options;
  options.verify = true;
  bool force_ratio = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenario") scenario = take_value(args, i);
    else if (args[i] == "--trace") trace_path = take_value(args, i);
    else if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed")
      seed = parse_u64_arg(take_value(args, i), "--seed");
    else if (args[i] == "--set") parse_set(take_value(args, i), overrides);
    else if (args[i] == "--save") save_path = take_value(args, i);
    else if (args[i] == "--batch")
      options.batch_size = parse_u64_arg(take_value(args, i), "--batch");
    else if (args[i] == "--no-verify") options.verify = false;
    else if (args[i] == "--overflow")
      options.overflow = parse_overflow_arg(take_value(args, i));
    else if (args[i] == "--trace-out") trace_out = take_value(args, i);
    else if (args[i] == "--latency-csv") latency_csv = take_value(args, i);
    else if (args[i] == "--ratio") force_ratio = true;
    else throw std::invalid_argument("stream: unknown option " + args[i]);
  }
  if (scenario.empty() == trace_path.empty())
    throw std::invalid_argument(
        "stream: exactly one of --scenario / --trace is required");

  auto algo = default_algorithm_registry().make(
      algorithm, derive_algorithm_seed(seed));

  auto finish = [&](const std::string& name, const StreamRunResult& result,
                    const MetricPtr& metric, const CostModelPtr& cost) {
    report_stream(name, *algo, seed, result,
                  options.verify && !result.violation, metric, cost,
                  force_ratio);
    if (result.violation)
      throw std::logic_error("invalid stream run: " +
                             result.violation->what);
    return 0;
  };

  if (!trace_path.empty()) {
    if (!save_path.empty())
      throw std::invalid_argument(
          "stream: --save applies to generated scenarios only");
    if (!overrides.empty())
      throw std::invalid_argument(
          "stream: --set applies to generated scenarios only; a trace "
          "replays exactly as saved");
    std::ifstream file(trace_path);
    if (!file) throw std::runtime_error("cannot open " + trace_path);
    StreamTraceReader reader(file);
    const StreamRunResult result =
        run_stream_observed(*algo, reader, options, trace_out, latency_csv);
    return finish(reader.name(), result, reader.metric(), reader.cost());
  }

  const EventStream stream =
      default_stream_scenario_registry().make(scenario, seed, overrides);
  if (!save_path.empty()) {
    AtomicFileWriter file(save_path);
    write_event_stream(file.stream(), stream);
    file.commit();
    std::cout << "saved      " << save_path << "\n";
  }
  MaterializedEventSource source(stream);
  const StreamRunResult result =
      run_stream_observed(*algo, source, options, trace_out, latency_csv);
  return finish(stream.name(), result, stream.metric_ptr(),
                stream.cost_ptr());
}

// ----------------------------------------------------------------- serve ---

// Collects the engine's merged decision trace in memory so the fault
// harness can truncate it to the last checkpoint's trace_seq after an
// injected crash — the replay tail then re-emits exactly the dropped
// suffix, and the final log is bitwise identical to a crash-free run.
struct VecTraceSink final : TraceSink {
  std::vector<TraceEvent> events;
  void on_event(const TraceEvent& event) override {
    events.push_back(event);
  }
};

// The deterministic per-tenant block: costs, events and facility counts
// are pure functions of the tenant specs — independent of shards,
// threads, crash/restore cycles and placement. CI diffs it across shard
// and thread counts and across fault-injected runs.
std::string tenant_report(const EngineResult& result, bool verify) {
  TableWriter table({"tenant", "scenario", "events", "gross cost",
                     "active cost", "facilities", "shed", "spilled",
                     "verified"});
  table.set_precision(17);
  for (const TenantResult& tenant : result.tenants) {
    table.begin_row()
        .add(tenant.name)
        .add(tenant.scenario)
        .add(static_cast<long long>(tenant.run.events))
        .add(tenant.run.ledger.total_cost())
        .add(tenant.run.ledger.active_cost())
        .add(static_cast<long long>(tenant.run.ledger.num_facilities()))
        .add(static_cast<long long>(tenant.run.ledger.num_shed_requests()))
        .add(static_cast<long long>(
            tenant.run.ledger.num_spilled_assignments()))
        .add(!verify ? "off" : (tenant.run.violation ? "FAIL" : "ok"));
  }
  std::ostringstream os;
  table.write_markdown(os);
  return os.str();
}

int cmd_serve(const std::vector<std::string>& args) {
  std::size_t tenants = 8;
  std::string mix = "mixed";
  std::string algorithm = "pd";
  std::string metrics_out;
  std::string trace_out;
  std::string fault_spec;
  std::string placement_spec;
  std::string report_out;
  std::uint64_t sample_every = 1;
  std::uint64_t seed = 1;
  double scale = 1.0;
  bool seq_baseline = false;
  EngineOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tenants")
      tenants = parse_u64_arg(take_value(args, i), "--tenants");
    else if (args[i] == "--mix") mix = take_value(args, i);
    else if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed")
      seed = parse_u64_arg(take_value(args, i), "--seed");
    else if (args[i] == "--shards")
      options.shards = parse_u64_arg(take_value(args, i), "--shards");
    else if (args[i] == "--threads")
      options.threads = parse_u64_arg(take_value(args, i), "--threads");
    else if (args[i] == "--batch")
      options.batch_size = parse_u64_arg(take_value(args, i), "--batch");
    else if (args[i] == "--scale")
      scale = parse_double_arg(take_value(args, i), "--scale");
    else if (args[i] == "--no-verify") options.verify = false;
    else if (args[i] == "--capacity")
      options.capacity = parse_u64_arg(take_value(args, i), "--capacity");
    else if (args[i] == "--overflow")
      options.overflow = parse_overflow_arg(take_value(args, i));
    else if (args[i] == "--seq-baseline") seq_baseline = true;
    else if (args[i] == "--metrics-out") metrics_out = take_value(args, i);
    else if (args[i] == "--sample-every")
      sample_every = parse_u64_arg(take_value(args, i), "--sample-every");
    else if (args[i] == "--trace-out") trace_out = take_value(args, i);
    else if (args[i] == "--checkpoint-dir")
      options.checkpoint_dir = take_value(args, i);
    else if (args[i] == "--checkpoint-every")
      options.checkpoint_every =
          parse_u64_arg(take_value(args, i), "--checkpoint-every");
    else if (args[i] == "--fault-plan") fault_spec = take_value(args, i);
    else if (args[i] == "--placement") placement_spec = take_value(args, i);
    else if (args[i] == "--report-out") report_out = take_value(args, i);
    else throw std::invalid_argument("serve: unknown option " + args[i]);
  }
  if (options.checkpoint_every > 0 && options.checkpoint_dir.empty())
    throw std::invalid_argument(
        "serve: --checkpoint-every requires --checkpoint-dir");
  if (!placement_spec.empty()) {
    std::istringstream fields(placement_spec);
    std::string field;
    while (std::getline(fields, field, ','))
      options.placement.push_back(
          parse_u64_arg(field, "--placement"));
  }
  std::optional<FaultPlan> fault_plan;
  if (!fault_spec.empty()) {
    if (options.checkpoint_dir.empty() || options.checkpoint_every == 0)
      throw std::invalid_argument(
          "serve: --fault-plan requires --checkpoint-dir and "
          "--checkpoint-every (a crash without checkpoints only loses "
          "work)");
    fault_plan = FaultPlan::parse(fault_spec);
    options.fault_plan = &*fault_plan;
  }

  std::vector<TenantSpec> specs =
      default_workload_mix_registry().tenants(mix, tenants, seed, scale);
  for (TenantSpec& spec : specs) spec.algorithm = algorithm;

  // Observability taps, wired into EngineOptions before construction.
  // The metrics stream stays open across injected crashes (the telemetry
  // of a restart *should* show the replayed rounds); it is published
  // atomically at the end.
  std::optional<AtomicFileWriter> metrics_file;
  std::optional<MetricsSampler> sampler;
  if (!metrics_out.empty()) {
    metrics_file.emplace(metrics_out);
    const bool jsonl =
        metrics_out.size() >= 5 &&
        (metrics_out.rfind(".jsonl") == metrics_out.size() - 6 ||
         metrics_out.rfind(".json") == metrics_out.size() - 5);
    sampler.emplace(metrics_file->stream(),
                    jsonl ? MetricsSampler::Format::kJsonl
                          : MetricsSampler::Format::kCsv,
                    sample_every);
    options.sampler = &*sampler;
  }
  // Decision trace: streamed straight to the (atomically published) file
  // in normal runs. Under fault injection it is buffered in memory
  // instead, because every crash has to rewind the log to the last
  // checkpoint's trace_seq before the replay tail re-appends it.
  std::optional<AtomicFileWriter> trace_file;
  std::optional<TraceLogWriter> trace_writer;
  std::optional<VecTraceSink> trace_vec;
  if (!trace_out.empty()) {
    if (fault_plan) {
      trace_vec.emplace();
      options.trace_sink = &*trace_vec;
    } else {
      trace_file.emplace(trace_out);
      trace_writer.emplace(trace_file->stream());
      options.trace_sink = &*trace_writer;
    }
  }

  // The serve loop: under a fault plan, every injected crash tears down
  // the engine (sessions, ledgers, algorithms — everything), corrupts
  // the newest checkpoint generation per the plan, and the next
  // iteration rebuilds from the newest *valid* one, exactly like a fresh
  // process would.
  std::optional<ShardedEngine> engine;
  EngineResult result;
  std::uint64_t restarts = 0;
  for (;;) {
    try {
      engine.emplace(specs, options);
      result = engine->run();
      break;
    } catch (const EngineCrash& crash) {
      engine.reset();
      ++restarts;
      std::uint64_t resume_round = 0;
      std::uint64_t keep_trace = 0;
      CheckpointStore store(options.checkpoint_dir);
      if (const auto manifest = store.latest_valid()) {
        resume_round = manifest->round;
        keep_trace = manifest->trace_seq;
      }
      if (trace_vec && trace_vec->events.size() > keep_trace)
        trace_vec->events.resize(keep_trace);
      std::cout << "crash      injected after round " << crash.round
                << "; restarting from round " << resume_round << "\n";
    }
  }

  if (trace_vec) {
    trace_file.emplace(trace_out);
    TraceLogWriter writer(trace_file->stream());
    for (const TraceEvent& event : trace_vec->events)
      writer.on_event(event);
    writer.finish();
    trace_file->commit();
    std::cout << "trace      " << writer.events_written() << " events -> "
              << trace_out << "\n";
  } else if (trace_writer) {
    trace_writer->finish();
    trace_file->commit();
    std::cout << "trace      " << trace_writer->events_written()
              << " events -> " << trace_out << "\n";
  }
  if (sampler) {
    metrics_file->commit();
    std::cout << "metrics    per-shard telemetry (every " << sample_every
              << " round" << (sample_every == 1 ? "" : "s") << ") -> "
              << metrics_out << "\n";
  }

  std::cout.precision(17);
  std::cout << "engine     mix=" << mix << " tenants="
            << result.tenants.size() << " shards=" << result.shards
            << " threads=" << result.threads << " batch="
            << options.batch_size << " algorithm=" << algorithm
            << " (seed " << seed << ")\n"
            << "rounds     " << result.rounds << " (global clock)\n"
            << "events     " << result.total_events << " total\n"
            << "throughput " << result.events_per_sec()
            << " events/s aggregate (" << result.wall_ns / 1e6
            << " ms wall)\n";
  if (result.restored_from_round > 0 || result.checkpoints_published > 0 ||
      restarts > 0)
    std::cout << "recovery   restored from round "
              << result.restored_from_round << ", "
              << result.checkpoints_published
              << " checkpoint generations published, " << restarts
              << " injected crash" << (restarts == 1 ? "" : "es") << "\n";
  const LatencySnapshot& latency = result.batch_latency;
  std::cout << "latency    batch p50 " << latency.p50_ns / 1e6
            << " ms, p95 " << latency.p95_ns / 1e6 << " ms, p99 "
            << latency.p99_ns / 1e6 << " ms, p999 "
            << latency.p999_ns / 1e6 << " ms, max " << latency.max_ns / 1e6
            << " ms (" << latency.count << " batches)\n"
            << "aggregate  gross " << result.aggregate_gross_cost
            << " active " << result.aggregate_active_cost << "\n";
  if (options.capacity > 0 || result.aggregate_shed_requests > 0 ||
      result.aggregate_spilled_assignments > 0)
    std::cout << "admission  " << overflow_policy_tag(options.overflow)
              << (options.capacity > 0
                      ? " (capacity " + std::to_string(options.capacity) + ")"
                      : "")
              << ": " << result.aggregate_shed_requests
              << " requests shed, " << result.aggregate_spilled_assignments
              << " assignments spilled\n";

  const std::string report = tenant_report(result, options.verify);
  std::cout << report;
  if (!report_out.empty()) {
    write_file_atomic(report_out, report);
    std::cout << "report     " << report_out << "\n";
  }

  if (const TenantResult* violation = result.first_violation())
    throw std::logic_error("invalid serve run: tenant '" + violation->name +
                           "': " + violation->run.violation->what);
  if (options.verify)
    std::cout << "verified   all " << result.tenants.size()
              << " tenant ledgers OK\n";

  if (seq_baseline) {
    // The same tenants, one run_stream after another on this thread —
    // the loop the engine's aggregate throughput is judged against.
    // Stream generation is excluded from the timing on both sides.
    // Streams and algorithm instances are built before the timer on
    // both sides (the engine constructs its sessions before its own
    // wall timer starts), so the comparison times serving only.
    StreamRunOptions run_options;
    run_options.batch_size = options.batch_size;
    run_options.verify = options.verify;
    run_options.overflow = options.overflow;
    std::vector<EventStream> streams;
    std::vector<std::unique_ptr<OnlineAlgorithm>> algorithms;
    streams.reserve(engine->tenants().size());
    algorithms.reserve(engine->tenants().size());
    for (const TenantSpec& spec : engine->tenants()) {
      streams.push_back(default_stream_scenario_registry().make(
          spec.scenario, spec.seed, spec.overrides));
      algorithms.push_back(default_algorithm_registry().make(
          spec.algorithm, derive_algorithm_seed(spec.seed)));
    }
    BenchTimer timer;
    std::uint64_t events = 0;
    struct SeqTotals {
      double gross, active;
      std::uint64_t shed, spilled;
    };
    std::vector<SeqTotals> totals;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      // Mirror the engine's per-tenant uniform capacity override.
      if (options.capacity > 0)
        run_options.capacities =
            std::make_shared<const std::vector<std::uint64_t>>(
                streams[i].metric().num_points(), options.capacity);
      const StreamRunResult sequential =
          run_stream(*algorithms[i], streams[i], run_options);
      events += sequential.events;
      totals.push_back({sequential.ledger.total_cost(),
                        sequential.ledger.active_cost(),
                        sequential.ledger.num_shed_requests(),
                        sequential.ledger.num_spilled_assignments()});
    }
    const double wall_ns = timer.elapsed_ns();
    const double seq_events_per_sec =
        wall_ns > 0.0 ? static_cast<double>(events) * 1e9 / wall_ns : 0.0;
    for (std::size_t i = 0; i < totals.size(); ++i) {
      const SolutionLedger& engine_ledger = result.tenants[i].run.ledger;
      if (totals[i].gross != engine_ledger.total_cost() ||
          totals[i].active != engine_ledger.active_cost() ||
          totals[i].shed != engine_ledger.num_shed_requests() ||
          totals[i].spilled != engine_ledger.num_spilled_assignments())
        throw std::logic_error(
            "serve: sequential baseline diverged from the engine on "
            "tenant '" + result.tenants[i].name + "'");
    }
    std::cout << "sequential " << seq_events_per_sec << " events/s ("
              << wall_ns / 1e6 << " ms wall); engine speedup "
              << (seq_events_per_sec > 0.0
                      ? result.events_per_sec() / seq_events_per_sec
                      : 0.0)
              << "x; per-tenant costs bitwise identical\n";
  }
  return 0;
}

// --------------------------------------------------------------- explain ---

int cmd_explain(const std::vector<std::string>& args) {
  std::string path;
  ExplainOptions options;
  TraceLogReadMode mode = TraceLogReadMode::kStrict;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--facility")
      options.facility = static_cast<FacilityId>(
          parse_u64_arg(take_value(args, i), "--facility"));
    else if (args[i] == "--request")
      options.request = static_cast<RequestId>(
          parse_u64_arg(take_value(args, i), "--request"));
    else if (args[i] == "--recover")
      mode = TraceLogReadMode::kRecoverPrefix;
    else if (!args[i].empty() && args[i][0] != '-' && path.empty())
      path = args[i];
    else throw std::invalid_argument("explain: unknown option " + args[i]);
  }
  if (path.empty())
    throw std::invalid_argument("explain: a tracelog file is required");
  if (options.facility && options.request)
    throw std::invalid_argument(
        "explain: --facility and --request are mutually exclusive");

  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  TraceLogReader reader(file, mode);
  std::vector<TraceEvent> events;
  TraceEvent event;
  while (reader.next(event)) events.push_back(std::move(event));
  if (reader.truncated())
    std::cout << "recovered  " << reader.events_read()
              << "-event valid prefix of a torn tracelog\n";
  std::cout << explain_trace(events, options);
  return 0;
}

// ----------------------------------------------------------------- sweep ---

int cmd_sweep(const std::vector<std::string>& args) {
  SweepOptions options;
  std::string csv_path;
  std::string json_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenarios") {
      const std::string value = take_value(args, i);
      if (value != "all") options.scenarios = split_csv(value);
    } else if (args[i] == "--algorithms") {
      const std::string value = take_value(args, i);
      if (value != "all") options.algorithms = split_csv(value);
    } else if (args[i] == "--seeds") {
      options.seeds = parse_u64_arg(take_value(args, i), "--seeds");
    } else if (args[i] == "--seed-base") {
      options.seed_base = parse_u64_arg(take_value(args, i), "--seed-base");
    } else if (args[i] == "--set") {
      parse_set(take_value(args, i), options.overrides);
    } else if (args[i] == "--threads") {
      options.threads = parse_u64_arg(take_value(args, i), "--threads");
    } else if (args[i] == "--ratio") {
      options.opt.compute_lower = true;
    } else if (args[i] == "--csv") {
      csv_path = take_value(args, i);
    } else if (args[i] == "--json") {
      json_path = take_value(args, i);
    } else {
      throw std::invalid_argument("sweep: unknown option " + args[i]);
    }
  }

  const SweepResult result = run_sweep(options);
  if (csv_path.empty()) {
    result.write_csv(std::cout);
  } else {
    AtomicFileWriter file(csv_path);
    result.write_csv(file.stream());
    file.commit();
    std::cout << "wrote " << result.cells().size() << " cells ("
              << result.scenarios().size() << " scenarios x "
              << result.algorithms().size() << " algorithms, "
              << result.seeds() << " seeds each) to " << csv_path << "\n";
  }
  if (!json_path.empty()) {
    AtomicFileWriter file(json_path);
    result.write_json(file.stream());
    file.commit();
    std::cout << "wrote JSON to " << json_path << "\n";
  }
  return 0;
}

// ----------------------------------------------------------------- bound ---

// Shared tail of cmd_bound: optionally run `algorithm` for the cost
// numerator, print the certified ratio, apply the gates. `cost` is the
// gross/total cost the given lower bound certifies a ratio against;
// `paper_n` is the request count entering H_n of Theorem 4's bound.
// Output contains no timing — CI diffs it bitwise across thread counts.
int bound_gates(double cost, bool have_cost, double lower,
                std::size_t num_commodities, std::size_t paper_n,
                std::optional<double> max_certified_ratio,
                bool assert_paper_bound) {
  if (!have_cost) {
    if (max_certified_ratio || assert_paper_bound)
      throw std::invalid_argument(
          "bound: the ratio gates need --algorithm to produce a cost");
    return 0;
  }
  if (lower <= 0.0) {
    std::cout << "certified  ratio unavailable (lower bound is 0)\n";
    if (max_certified_ratio || assert_paper_bound) {
      std::cout << "FAIL       a gate was requested but the lower bound "
                   "is vacuous\n";
      return 1;
    }
    return 0;
  }
  const double certified_ratio = cost / lower;
  std::cout << "certified  ratio " << certified_ratio
            << " (cost / certified lower bound; true ratio <= this)\n";
  int exit_code = 0;
  if (max_certified_ratio) {
    if (certified_ratio > *max_certified_ratio) {
      std::cout << "FAIL       certified ratio " << certified_ratio
                << " exceeds --max-certified-ratio "
                << *max_certified_ratio << "\n";
      exit_code = 1;
    } else {
      std::cout << "ok         certified ratio within "
                << *max_certified_ratio << "\n";
    }
  }
  if (assert_paper_bound) {
    const double paper = theorem4_bound(num_commodities, paper_n);
    if (certified_ratio > paper) {
      std::cout << "FAIL       certified ratio " << certified_ratio
                << " exceeds Theorem 4's 15*sqrt(|S|)*H_n = " << paper
                << "\n";
      exit_code = 1;
    } else {
      std::cout << "ok         within Theorem 4's 15*sqrt(|S|)*H_n = "
                << paper << "\n";
    }
  }
  return exit_code;
}

int cmd_bound(const std::vector<std::string>& args) {
  std::string scenario;
  std::string instance_path;
  std::string stream_scenario;
  std::string trace_path;
  std::string method = "auto";
  std::string algorithm;
  std::string save_cert_path;
  std::uint64_t seed = 1;
  std::size_t window = 4096;
  std::optional<double> max_certified_ratio;
  bool assert_paper_bound = false;
  std::map<std::string, double> overrides;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenario") scenario = take_value(args, i);
    else if (args[i] == "--instance") instance_path = take_value(args, i);
    else if (args[i] == "--stream") stream_scenario = take_value(args, i);
    else if (args[i] == "--trace") trace_path = take_value(args, i);
    else if (args[i] == "--method") method = take_value(args, i);
    else if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed")
      seed = parse_u64_arg(take_value(args, i), "--seed");
    else if (args[i] == "--set") parse_set(take_value(args, i), overrides);
    else if (args[i] == "--window")
      window = parse_u64_arg(take_value(args, i), "--window");
    else if (args[i] == "--max-certified-ratio")
      max_certified_ratio = parse_double_arg(take_value(args, i),
                                             "--max-certified-ratio");
    else if (args[i] == "--assert-paper-bound") assert_paper_bound = true;
    else if (args[i] == "--save-cert") save_cert_path = take_value(args, i);
    else throw std::invalid_argument("bound: unknown option " + args[i]);
  }
  const int sources = (scenario.empty() ? 0 : 1) +
                      (instance_path.empty() ? 0 : 1) +
                      (stream_scenario.empty() ? 0 : 1) +
                      (trace_path.empty() ? 0 : 1);
  if (sources != 1)
    throw std::invalid_argument(
        "bound: exactly one of --scenario / --instance / --stream / "
        "--trace is required");

  std::cout.precision(17);

  // ---- static instance: one registry bound, optional certificate dump.
  if (!scenario.empty() || !instance_path.empty()) {
    Instance instance = [&] {
      if (!scenario.empty())
        return default_scenario_registry().make(scenario, seed, overrides);
      if (!overrides.empty())
        throw std::invalid_argument(
            "bound: --set applies to generated scenarios only");
      std::ifstream file(instance_path);
      if (!file) throw std::runtime_error("cannot open " + instance_path);
      return read_instance(file);
    }();
    const BoundOutcome outcome =
        default_bound_registry().make(method, instance);
    std::cout << "instance   " << instance.name() << " (n="
              << instance.num_requests() << ", |S|="
              << instance.num_commodities() << ", |M|="
              << instance.metric().num_points() << ")\n"
              << "method     " << outcome.method << "\n"
              << "lower      " << outcome.lower << " (certified"
              << (outcome.exact ? ", exact" : "") << ")\n";
    if (!save_cert_path.empty()) {
      if (!outcome.certificate)
        throw std::invalid_argument("bound: method '" + method +
                                    "' produced no certificate to save");
      AtomicFileWriter file(save_cert_path);
      write_certificate(file.stream(), *outcome.certificate);
      file.commit();
      std::cout << "saved      " << save_cert_path << "\n";
    }
    double cost = 0.0;
    bool have_cost = false;
    if (!algorithm.empty()) {
      auto algo = default_algorithm_registry().make(
          algorithm, derive_algorithm_seed(seed));
      const SolutionLedger ledger = run_online(*algo, instance);
      if (const auto violation = verify_solution(instance, ledger))
        throw std::logic_error("invalid solution: " + violation->what);
      cost = ledger.total_cost();
      have_cost = true;
      std::cout << "algorithm  " << algo->name() << " (seed " << seed
                << ")\n"
                << "cost       " << cost << "\n";
    }
    return bound_gates(cost, have_cost, outcome.lower,
                       instance.num_commodities(), instance.num_requests(),
                       max_certified_ratio, assert_paper_bound);
  }

  // ---- event stream: windowed decomposition, bounded memory. The sum of
  // per-window bounds certifies the windowed re-optimizing adversary (see
  // src/bound/window.hpp), the baseline the algorithm's *gross* cost is
  // compared against.
  if (!save_cert_path.empty())
    throw std::invalid_argument(
        "bound: --save-cert applies to static bounds (stream windows each "
        "carry their own certificate)");
  if (method != "auto")
    throw std::invalid_argument(
        "bound: --method applies to static bounds (streams always use "
        "the windowed dual ascent)");
  WindowBoundOptions wopt;
  wopt.max_window_arrivals = window;
  StreamBoundResult bound_result;
  std::string name;
  std::size_t num_commodities = 0;
  if (!trace_path.empty()) {
    if (!overrides.empty())
      throw std::invalid_argument(
          "bound: --set applies to generated scenarios only");
    std::ifstream file(trace_path);
    if (!file) throw std::runtime_error("cannot open " + trace_path);
    StreamTraceReader reader(file);
    bound_result = bound_stream_windows(reader, wopt);
    name = reader.name();
    num_commodities = reader.cost()->num_commodities();
  } else {
    const EventStream stream = default_stream_scenario_registry().make(
        stream_scenario, seed, overrides);
    MaterializedEventSource source(stream);
    bound_result = bound_stream_windows(source, wopt);
    name = stream.name();
    num_commodities = stream.num_commodities();
  }
  std::cout << "stream     " << name << " (events=" << bound_result.events
            << ", arrivals=" << bound_result.arrivals << ")\n"
            << "windows    " << bound_result.windows << " ("
            << bound_result.forced_splits << " forced splits, largest "
            << bound_result.max_window_arrivals << " arrivals)\n"
            << "lower      " << bound_result.windowed_lower
            << " (windowed sum, certified vs the per-window re-optimizing "
               "adversary)\n";
  double cost = 0.0;
  bool have_cost = false;
  if (!algorithm.empty()) {
    auto algo = default_algorithm_registry().make(
        algorithm, derive_algorithm_seed(seed));
    StreamRunOptions run_options;
    run_options.verify = true;
    const StreamRunResult run = [&] {
      if (!trace_path.empty()) {
        std::ifstream file(trace_path);
        if (!file) throw std::runtime_error("cannot open " + trace_path);
        StreamTraceReader reader(file);
        return run_stream(*algo, reader, run_options);
      }
      const EventStream stream = default_stream_scenario_registry().make(
          stream_scenario, seed, overrides);
      return run_stream(*algo, stream, run_options);
    }();
    if (run.violation)
      throw std::logic_error("invalid stream run: " + run.violation->what);
    cost = run.ledger.total_cost();
    have_cost = true;
    std::cout << "algorithm  " << algo->name() << " (seed " << seed << ")\n"
              << "gross      " << cost << "\n";
  }
  return bound_gates(cost, have_cost, bound_result.windowed_lower,
                     num_commodities,
                     static_cast<std::size_t>(bound_result.arrivals),
                     max_certified_ratio, assert_paper_bound);
}

// ----------------------------------------------------------------- bench ---

int cmd_bench(const std::vector<std::string>& args) {
  bool quick = false;
  std::optional<std::uint64_t> trials;
  std::optional<std::uint64_t> warmup;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--quick") quick = true;
    else if (args[i] == "--trials")
      trials = parse_u64_arg(take_value(args, i), "--trials");
    else if (args[i] == "--warmup")
      warmup = parse_u64_arg(take_value(args, i), "--warmup");
    else if (args[i] == "--out") out_path = take_value(args, i);
    else throw std::invalid_argument("bench: unknown option " + args[i]);
  }
  // --quick picks the base profile; explicit --trials/--warmup override
  // it regardless of argument order.
  BenchOptions options = quick ? quick_bench_options() : BenchOptions{};
  if (trials) options.trials = *trials;
  if (warmup) options.warmup = *warmup;

  const BenchSuite suite = default_bench_suite();
  std::cout << "suite " << suite.name() << ": " << suite.size()
            << " cases, " << options.warmup << " warmup + "
            << options.trials << " timed trials each\n";
  options.progress = &std::cout;
  const BenchReport report = suite.run(options);
  std::cout << "\n";
  report.write_table(std::cout);

  if (out_path.empty()) out_path = default_bench_filename(suite.name());
  AtomicFileWriter file(out_path);
  report.write_json(file.stream());
  file.commit();
  std::cout << "\nwrote " << report.cases.size() << " cases (git "
            << report.git_sha << ", " << report.build_type << ") to "
            << out_path << "\n";
  return 0;
}

// --------------------------------------------------------------- compare ---

int cmd_compare(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  CompareOptions options;
  bool report_only = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold")
      options.regression_threshold =
          parse_double_arg(take_value(args, i), "--threshold");
    else if (args[i] == "--report-only") report_only = true;
    else if (args[i] == "--fail-on-missing") options.fail_on_missing = true;
    else if (!args[i].empty() && args[i][0] != '-') paths.push_back(args[i]);
    else throw std::invalid_argument("compare: unknown option " + args[i]);
  }
  if (paths.size() != 2)
    throw std::invalid_argument(
        "compare: exactly two BENCH json files are required");

  const BenchReport old_report = read_bench_report_file(paths[0]);
  const BenchReport new_report = read_bench_report_file(paths[1]);
  std::cout << "old: " << paths[0] << " (git " << old_report.git_sha
            << ", " << old_report.build_type << ")\n"
            << "new: " << paths[1] << " (git " << new_report.git_sha
            << ", " << new_report.build_type << ")\n\n";
  const CompareReport comparison =
      compare_reports(old_report, new_report, options);
  comparison.write_table(std::cout);
  return comparison.any_regression() && !report_only ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "stream") return cmd_stream(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "bound") return cmd_bound(args);
    if (command == "bench") return cmd_bench(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "help" || command == "--help" || command == "-h")
      return usage(std::cout, 0);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
