// omflp — the scenario-engine command line.
//
//   omflp list                          catalog of scenarios and algorithms
//   omflp run    --scenario S ...       run one (scenario, algorithm, seed)
//   omflp sweep  --scenarios a,b ...    mass-run a cross-product, emit CSV
//   omflp replay FILE ...               re-run a saved instance trace
//
// Examples:
//   omflp run --scenario clustered --algorithm pd --seed 3 --set clusters=8
//   omflp run --scenario theorem2 --save trace.omflp
//   omflp replay trace.omflp --algorithm rand --seed 7
//   omflp sweep --scenarios all --algorithms pd,rand --seeds 8 \
//               --csv sweep.csv --json sweep.json
//
// Every run is a deterministic function of (scenario, parameters, seed):
// `replay` on a trace saved by `run --save` reproduces the same total
// cost exactly, as does re-running `run` with the same arguments.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/competitive.hpp"
#include "instance/io.hpp"
#include "scenario/algorithm_registry.hpp"
#include "scenario/registry_util.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/sweep.hpp"
#include "solution/verifier.hpp"

namespace {

using namespace omflp;

int usage(std::ostream& os, int exit_code) {
  os << "usage: omflp <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                      list scenarios and algorithms\n"
        "  run                       run one scenario under one algorithm\n"
        "    --scenario NAME           required\n"
        "    --algorithm NAME          default: pd\n"
        "    --seed N                  default: 1\n"
        "    --set key=value           override a scenario parameter "
        "(repeatable)\n"
        "    --save FILE               save the generated instance trace\n"
        "  sweep                     run a (scenario x algorithm x seed) "
        "cross-product\n"
        "    --scenarios a,b|all       default: all\n"
        "    --algorithms a,b|all      default: all\n"
        "    --seeds N                 default: 8\n"
        "    --seed-base N             default: 1\n"
        "    --set key=value           override where declared "
        "(repeatable)\n"
        "    --threads N               default: hardware\n"
        "    --csv FILE                write per-cell CSV (default: "
        "stdout)\n"
        "    --json FILE               also write per-cell JSON\n"
        "  replay FILE               re-run a saved instance trace\n"
        "    --algorithm NAME          default: pd\n"
        "    --seed N                  default: 1\n";
  return exit_code;
}

/// Pops the value of `--flag value`; throws on a missing value.
std::string take_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size())
    throw std::invalid_argument("missing value after " + args[i]);
  return args[++i];
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

void parse_set(const std::string& text,
               std::map<std::string, double>& overrides) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0)
    throw std::invalid_argument("--set expects key=value, got '" + text +
                                "'");
  const std::string key = text.substr(0, eq);
  const std::string value_text = text.substr(eq + 1);
  char* end = nullptr;
  const double value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0')
    throw std::invalid_argument("--set " + key + ": '" + value_text +
                                "' is not a number");
  overrides[key] = value;
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw std::invalid_argument(std::string(what) + ": '" + text +
                                "' is not an integer");
  return value;
}

// ------------------------------------------------------------------ list ---

int cmd_list() {
  const ScenarioRegistry& scenarios = default_scenario_registry();
  const AlgorithmRegistry& algorithms = default_algorithm_registry();

  std::cout << "scenarios (" << scenarios.size() << "):\n";
  for (const std::string& name : scenarios.names()) {
    const ScenarioSpec& spec = scenarios.spec(name);
    std::cout << "  " << name << " — " << spec.description << "\n";
    for (const ScenarioParam& param : spec.params)
      std::cout << "      " << param.name << " = " << param.value << "  ("
                << param.description << ")\n";
  }
  std::cout << "\nalgorithms (" << algorithms.size() << "):\n";
  for (const std::string& name : algorithms.names()) {
    const AlgorithmSpec& spec = algorithms.spec(name);
    std::cout << "  " << name << (spec.randomized ? " [randomized]" : "")
              << " — " << spec.description << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------- run ---

void report_run(const Instance& instance, const std::string& algorithm_name,
                std::uint64_t seed) {
  // The workload seed and the algorithm's coin seed are decorrelated (see
  // derive_algorithm_seed); replays with the same --seed stay identical.
  auto algorithm = default_algorithm_registry().make(
      algorithm_name, derive_algorithm_seed(seed));
  const SolutionLedger ledger = run_online(*algorithm, instance);
  if (const auto violation = verify_solution(instance, ledger))
    throw std::logic_error("invalid solution: " + violation->what);

  std::cout.precision(17);
  std::cout << "instance   " << instance.name() << " (n="
            << instance.num_requests() << ", |S|="
            << instance.num_commodities() << ", |M|="
            << instance.metric().num_points() << ")\n"
            << "algorithm  " << algorithm->name() << " (seed " << seed
            << ")\n"
            << "total      " << ledger.total_cost() << "\n"
            << "  opening    " << ledger.opening_cost() << "\n"
            << "  connection " << ledger.connection_cost() << "\n"
            << "facilities " << ledger.num_facilities() << " ("
            << ledger.num_small_facilities() << " small, "
            << ledger.num_large_facilities() << " large)\n";
  const OptEstimate opt = estimate_opt(instance);
  std::cout << "opt        " << opt.cost << " (" << opt.method
            << (opt.exact ? ", exact" : ", upper bound") << ")\n"
            << "ratio      " << ledger.total_cost() / opt.cost << "\n";
}

int cmd_run(const std::vector<std::string>& args) {
  std::string scenario;
  std::string algorithm = "pd";
  std::string save_path;
  std::uint64_t seed = 1;
  std::map<std::string, double> overrides;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenario") scenario = take_value(args, i);
    else if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed") seed = parse_u64(take_value(args, i), "--seed");
    else if (args[i] == "--set") parse_set(take_value(args, i), overrides);
    else if (args[i] == "--save") save_path = take_value(args, i);
    else throw std::invalid_argument("run: unknown option " + args[i]);
  }
  if (scenario.empty())
    throw std::invalid_argument("run: --scenario is required");

  const Instance instance =
      default_scenario_registry().make(scenario, seed, overrides);
  if (!save_path.empty()) {
    std::ofstream file(save_path);
    if (!file)
      throw std::runtime_error("cannot open " + save_path + " for writing");
    write_instance(file, instance);
    std::cout << "saved      " << save_path << "\n";
  }
  report_run(instance, algorithm, seed);
  return 0;
}

// ---------------------------------------------------------------- replay ---

int cmd_replay(const std::vector<std::string>& args) {
  std::string path;
  std::string algorithm = "pd";
  std::uint64_t seed = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--algorithm") algorithm = take_value(args, i);
    else if (args[i] == "--seed") seed = parse_u64(take_value(args, i), "--seed");
    else if (!args[i].empty() && args[i][0] != '-' && path.empty())
      path = args[i];
    else throw std::invalid_argument("replay: unknown option " + args[i]);
  }
  if (path.empty())
    throw std::invalid_argument("replay: an instance file is required");

  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  const Instance instance = read_instance(file);
  report_run(instance, algorithm, seed);
  return 0;
}

// ----------------------------------------------------------------- sweep ---

int cmd_sweep(const std::vector<std::string>& args) {
  SweepOptions options;
  std::string csv_path;
  std::string json_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenarios") {
      const std::string value = take_value(args, i);
      if (value != "all") options.scenarios = split_csv(value);
    } else if (args[i] == "--algorithms") {
      const std::string value = take_value(args, i);
      if (value != "all") options.algorithms = split_csv(value);
    } else if (args[i] == "--seeds") {
      options.seeds = parse_u64(take_value(args, i), "--seeds");
    } else if (args[i] == "--seed-base") {
      options.seed_base = parse_u64(take_value(args, i), "--seed-base");
    } else if (args[i] == "--set") {
      parse_set(take_value(args, i), options.overrides);
    } else if (args[i] == "--threads") {
      options.threads = parse_u64(take_value(args, i), "--threads");
    } else if (args[i] == "--csv") {
      csv_path = take_value(args, i);
    } else if (args[i] == "--json") {
      json_path = take_value(args, i);
    } else {
      throw std::invalid_argument("sweep: unknown option " + args[i]);
    }
  }

  const SweepResult result = run_sweep(options);
  if (csv_path.empty()) {
    result.write_csv(std::cout);
  } else {
    std::ofstream file(csv_path);
    if (!file)
      throw std::runtime_error("cannot open " + csv_path + " for writing");
    result.write_csv(file);
    std::cout << "wrote " << result.cells().size() << " cells ("
              << result.scenarios().size() << " scenarios x "
              << result.algorithms().size() << " algorithms, "
              << result.seeds() << " seeds each) to " << csv_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file)
      throw std::runtime_error("cannot open " + json_path + " for writing");
    result.write_json(file);
    std::cout << "wrote JSON to " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "help" || command == "--help" || command == "-h")
      return usage(std::cout, 0);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
