// omflp-lint CLI.
//
//   omflp-lint [--json] [--list-rules] <file-or-dir>...
//
// Directories are scanned recursively for .cpp/.hpp/.h/.cc (build trees
// and dot-directories skipped). Exit status: 0 when every finding is
// suppressed, 1 when any unsuppressed finding remains, 2 on usage or IO
// errors — so CI can gate on it directly.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using omflp::lint::Diagnostic;
using omflp::lint::Linter;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

void collect(const fs::path& root, std::vector<std::string>* files) {
  if (fs::is_regular_file(root)) {
    files->push_back(root.generic_string());
    return;
  }
  if (!fs::is_directory(root))
    throw std::runtime_error("omflp-lint: no such file or directory: " +
                             root.string());
  for (fs::recursive_directory_iterator it(root), end; it != end; ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() &&
        (name == "build" || (!name.empty() && name[0] == '.'))) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path()))
      files->push_back(it->path().generic_string());
  }
}

int usage() {
  std::cerr << "usage: omflp-lint [--json] [--list-rules] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    else if (arg == "--list-rules") list_rules = true;
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "omflp-lint: unknown option " << arg << "\n";
      return usage();
    } else roots.push_back(arg);
  }

  Linter linter;
  if (list_rules) {
    for (const auto& rule : linter.rules())
      std::cout << rule.name << " — " << rule.summary << "\n";
    return 0;
  }
  if (roots.empty()) return usage();

  try {
    std::vector<std::string> files;
    for (const auto& root : roots) collect(root, &files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Diagnostic> diags;
    for (const auto& file : files) {
      auto found = linter.lint_file(file);
      diags.insert(diags.end(), found.begin(), found.end());
    }
    if (json) {
      std::cout << omflp::lint::to_json(diags);
    } else {
      std::cout << omflp::lint::to_text(diags);
      std::cout << files.size() << " files scanned\n";
    }
    return omflp::lint::has_unsuppressed(diags) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
