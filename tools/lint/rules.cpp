// The built-in rule set. Every rule encodes a contract this repo has
// already paid for violating (or nearly violating) — see the rule
// summaries and README "Static analysis" for the history.
#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace omflp::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Word-boundary search: `token` at `pos` with non-identifier (or line
// edge) neighbours. Returns npos when absent.
std::size_t find_token(const std::string& line, std::string_view token,
                       std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

bool contains_token(const std::string& text, std::string_view token) {
  return find_token(text, token) != std::string::npos;
}

// True when `text` mentions any identifier containing `fragment`
// (case-insensitive), e.g. fragment "seed" matches `spec.seed`,
// `workload_seed`, `Seed`.
bool mentions_fragment(const std::string& text, std::string_view fragment) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return lower.find(fragment) != std::string::npos;
}

void report(std::vector<Diagnostic>& out, std::string rule,
            const SourceFile& file, std::size_t line, std::string message) {
  out.push_back(Diagnostic{std::move(rule), file.path(), line,
                           std::move(message), false});
}

bool rule_applies_outside_tests(const SourceFile& file) {
  return !path_in_dir(file.path(), "tests");
}

// ----------------------------------------------------------- raw-reserve ---
// PR 5's fuzz corpus found two real heap overflows that rode in on
// counts a parser trusted (CommoditySet word count and the sizeonly cost
// table, both wrapped in uint32). The discipline since: a parse path may
// only reserve what capped_reserve() grants — growth beyond the cap is
// paid for by input actually present.
void check_raw_reserve(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (!is_parse_path(file.path()) || path_in_dir(file.path(), "tests"))
    return;
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    const std::string& line = file.code_line(l);
    for (std::string_view call : {".reserve(", ".resize("}) {
      std::size_t pos = 0;
      while ((pos = line.find(call, pos)) != std::string::npos) {
        const std::size_t open = pos + call.size() - 1;
        const std::string args = file.call_arguments(l, open);
        if (!contains_token(args, "capped_reserve"))
          report(out, "raw-reserve", file, l,
                 std::string(call.substr(1, call.size() - 2)) +
                     "() on a parse path must route the declared count "
                     "through capped_reserve() — hostile counts fail at "
                     "parse, never in the allocator");
        pos = open + 1;
      }
    }
  }
}

// ------------------------------------------------------ nondet-iteration ---
// unordered_map/unordered_set iteration order is unspecified and varies
// across libstdc++ versions, seeds and loads. Any range-for over one
// that reaches output, traces, checkpoints or merged totals breaks the
// bitwise determinism contract (tests/test_engine.cpp). Iterate a
// sorted copy, or use std::map/std::set.
void check_nondet_iteration(const SourceFile& file,
                            std::vector<Diagnostic>& out) {
  if (!rule_applies_outside_tests(file)) return;
  // Pass 1: names declared with an unordered container type (same-line
  // declarations; covers locals and trailing-underscore members).
  std::set<std::string> unordered_names;
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    const std::string& line = file.code_line(l);
    for (std::string_view type : {"unordered_map", "unordered_set"}) {
      std::size_t pos = find_token(line, type);
      if (pos == std::string::npos) continue;
      std::size_t i = pos + type.size();
      if (i >= line.size() || line[i] != '<') continue;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        else if (line[i] == '>') {
          --depth;
          if (depth == 0) { ++i; break; }
        }
      }
      while (i < line.size() &&
             (std::isspace(static_cast<unsigned char>(line[i])) ||
              line[i] == '&' || line[i] == '*'))
        ++i;
      std::string name;
      while (i < line.size() && is_ident_char(line[i]))
        name.push_back(line[i++]);
      if (!name.empty()) unordered_names.insert(name);
    }
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for statements whose range expression is exactly one
  // of those names (optionally this->name).
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    const std::string& line = file.code_line(l);
    std::size_t pos = 0;
    while ((pos = find_token(line, "for", pos)) != std::string::npos) {
      std::size_t open = line.find('(', pos + 3);
      pos += 3;
      if (open == std::string::npos) continue;
      const std::string head = file.call_arguments(l, open, 8);
      // Top-level ':' (ignoring '::') splits declaration from range.
      int depth = 0;
      std::size_t colon = std::string::npos;
      for (std::size_t i = 0; i < head.size(); ++i) {
        const char c = head[i];
        if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
        else if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
        else if (c == ':' && depth == 0) {
          if ((i + 1 < head.size() && head[i + 1] == ':') ||
              (i > 0 && head[i - 1] == ':')) continue;
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string range = head.substr(colon + 1);
      // Trim whitespace and an optional this-> prefix.
      const auto first = range.find_first_not_of(" \t");
      const auto last = range.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      range = range.substr(first, last - first + 1);
      if (range.rfind("this->", 0) == 0) range = range.substr(6);
      if (unordered_names.count(range))
        report(out, "nondet-iteration", file, l,
               "range-for over unordered container '" + range +
                   "' — iteration order is unspecified; iterate a sorted "
                   "copy or use std::map/std::set where the order can "
                   "reach output, traces or merged totals (determinism "
                   "contract)");
    }
  }
}

// -------------------------------------------------------------- raw-parse ---
// strtoull silently wraps negative text ("-5" becomes 2^64−5 — the old
// `--trials -5` bug), atoi has undefined behavior on overflow, and all
// of them accept trailing garbage without an end-pointer check. Every
// numeric field must go through parse_u64_strict / parse_double_strict
// (support/parse.hpp).
void check_raw_parse(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (!rule_applies_outside_tests(file)) return;
  static const char* kRawParsers[] = {
      "strtod", "strtof",  "strtold", "strtol",  "strtoll", "strtoul",
      "strtoull", "atoi",  "atol",    "atoll",   "atof",    "stoi",
      "stol",   "stoll",   "stoul",   "stoull",  "stod",    "stof",
      "sscanf", "scanf"};
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    const std::string& line = file.code_line(l);
    for (const char* fn : kRawParsers) {
      std::size_t pos = 0;
      while ((pos = find_token(line, fn, pos)) != std::string::npos) {
        const std::size_t after = pos + std::string_view(fn).size();
        std::size_t open = after;
        while (open < line.size() &&
               std::isspace(static_cast<unsigned char>(line[open])))
          ++open;
        if (open < line.size() && line[open] == '(')
          report(out, "raw-parse", file, l,
                 std::string("raw numeric parsing via ") + fn +
                     "() — use parse_u64_strict/parse_double_strict "
                     "(support/parse.hpp): the raw functions wrap signs, "
                     "accept trailing garbage and hide overflow in errno");
        pos = after;
      }
    }
  }
}

// ----------------------------------------------------- raw-artifact-write ---
// Artifacts (traces, reports, checkpoints, CSV/JSON) must appear
// atomically: write_file_atomic/AtomicFileWriter stage to a temp file
// and rename, so a crash mid-write leaves either the old artifact or
// none — never a torn file a reader half-parses (PR 8 contract; the
// checkpoint store's recovery correctness depends on it).
void check_raw_artifact_write(const SourceFile& file,
                              std::vector<Diagnostic>& out) {
  if (!rule_applies_outside_tests(file)) return;
  const std::string& p = file.path();
  if (p.find("atomic_file") != std::string::npos) return;  // implementation
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    if (contains_token(file.code_line(l), "ofstream"))
      report(out, "raw-artifact-write", file, l,
             "direct std::ofstream — route artifact writes through "
             "write_file_atomic/AtomicFileWriter (support/atomic_file.hpp) "
             "so a crash mid-write never leaves a torn file");
  }
}

// ---------------------------------------------------------- kernel-purity ---
// src/kernel/ is the auto-vectorized hot-loop layer: no perf hooks (the
// caller bulk-ticks counters per row — per-element ticks broke
// vectorization and BENCH counter identity), no allocation (a resize
// inside a sweep serializes every thread on the heap lock). Setup-time
// allocations that are deliberate carry a suppression naming why.
void check_kernel_purity(const SourceFile& file,
                         std::vector<Diagnostic>& out) {
  if (!path_in_dir(file.path(), "kernel")) return;
  static const char* kImpure[] = {
      "OMFLP_PERF_TICK", "OMFLP_PERF_ADD", "malloc",       "calloc",
      "realloc",         "push_back",      "emplace_back", "make_unique",
      "make_shared",     "new"};
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    const std::string& line = file.code_line(l);
    for (const char* token : kImpure) {
      if (contains_token(line, token))
        report(out, "kernel-purity", file, l,
               std::string("'") + token +
                   "' in src/kernel/ — hot-loop kernels must stay pure: "
                   "callers own the perf counters (one bulk add per row) "
                   "and allocations belong to setup code, not sweeps");
    }
    for (std::string_view call : {".reserve(", ".resize("}) {
      if (line.find(call) != std::string::npos)
        report(out, "kernel-purity", file, l,
               std::string(call.substr(1, call.size() - 2)) +
                   "() in src/kernel/ — hot-loop kernels must not "
                   "allocate; growth belongs to setup code");
    }
    // Container declarations allocate too (vector<T> partial(n)); the
    // include line itself is exempt.
    if (line.find('#') == std::string::npos) {
      const std::size_t vec = find_token(line, "vector");
      if (vec != std::string::npos && vec + 6 < line.size() &&
          line[vec + 6] == '<')
        report(out, "kernel-purity", file, l,
               "vector construction in src/kernel/ — hot-loop kernels "
               "must not allocate; per-chunk scratch belongs to the "
               "parallel orchestration layer and needs a justification");
    }
  }
}

// ----------------------------------------------------------- seed-hygiene ---
// Workload seeds drive instance generation; algorithm coin flips must
// come from derive_algorithm_seed(workload_seed) or the two RNG streams
// correlate (a RAND run could systematically see "lucky" workloads —
// the PR 1 review bug). The check: an algorithm-registry make() whose
// arguments mention a seed must mention derive_algorithm_seed too.
void check_seed_hygiene(const SourceFile& file,
                        std::vector<Diagnostic>& out) {
  if (!rule_applies_outside_tests(file)) return;
  for (std::size_t l = 1; l <= file.num_lines(); ++l) {
    const std::string& line = file.code_line(l);
    std::size_t pos = 0;
    while ((pos = line.find(".make(", pos)) != std::string::npos) {
      // Receiver heuristic: the ~48 chars before ".make(" must mention
      // "algorithm" (default_algorithm_registry(), algorithms, ...) —
      // scenario registries correctly take the raw workload seed.
      const std::size_t begin = pos > 48 ? pos - 48 : 0;
      const std::string receiver = line.substr(begin, pos - begin);
      if (mentions_fragment(receiver, "algorithm")) {
        const std::string args = file.call_arguments(l, pos + 5);
        if (mentions_fragment(args, "seed") &&
            !contains_token(args, "derive_algorithm_seed"))
          report(out, "seed-hygiene", file, l,
                 "algorithm constructed from a raw workload seed — wrap "
                 "it in derive_algorithm_seed() so workload and "
                 "coin-flip RNG streams stay decorrelated "
                 "(scenario/registry_util.hpp)");
      }
      pos += 6;
    }
  }
}

}  // namespace

void register_builtin_rules(Linter& linter) {
  linter.register_rule(
      {"raw-reserve",
       "reserve/resize on a parse path not routed through capped_reserve()"},
      check_raw_reserve);
  linter.register_rule(
      {"nondet-iteration",
       "range-for over unordered_map/unordered_set (determinism contract)"},
      check_nondet_iteration);
  linter.register_rule(
      {"raw-parse",
       "strtod/atoi/stoi-style parsing instead of the strict parsers"},
      check_raw_parse);
  linter.register_rule(
      {"raw-artifact-write",
       "std::ofstream bypassing write_file_atomic/AtomicFileWriter"},
      check_raw_artifact_write);
  linter.register_rule(
      {"kernel-purity",
       "counter ticks or allocation inside src/kernel/ hot loops"},
      check_kernel_purity);
  linter.register_rule(
      {"seed-hygiene",
       "algorithm RNG seeded from a workload seed without "
       "derive_algorithm_seed()"},
      check_seed_hygiene);
}

}  // namespace omflp::lint
