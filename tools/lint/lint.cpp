#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace omflp::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splits raw content into lines (both \n and \r\n).
std::vector<std::string> split_lines(std::string_view content) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t nl = content.find('\n', start);
    std::string line(content.substr(
        start, nl == std::string_view::npos ? content.size() - start
                                            : nl - start));
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  // A trailing newline yields one empty phantom line; drop it so line
  // counts match what editors show.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

// The comment/string stripper. Replaces comment text and the *contents*
// of string/char literals with spaces so token searches cannot match
// prose, while keeping every line the same length. Tracks state across
// lines (block comments, raw strings). Comment text is appended to
// per-line `comment_text` so suppression markers survive the blanking.
struct Stripper {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  void strip_line(const std::string& in, std::string* code,
                  std::string* comment_text) {
    code->assign(in.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;
    std::size_t i = 0;
    while (i < in.size()) {
      switch (state) {
        case State::kCode: {
          const char c = in[i];
          if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
            comment_text->append(in, i, std::string::npos);
            state = State::kLineComment;
            i = in.size();
            break;
          }
          if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
            break;
          }
          if (c == 'R' && i + 1 < in.size() && in[i + 1] == '"' &&
              (i == 0 || !is_ident_char(in[i - 1]))) {
            const std::size_t open = in.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim.assign(1, ')');
              raw_delim.append(in, i + 2, open - i - 2);
              raw_delim.push_back('"');
              (*code)[i] = 'R';
              (*code)[i + 1] = '"';
              state = State::kRawString;
              i = open + 1;
              break;
            }
          }
          if (c == '"') {
            (*code)[i] = '"';
            state = State::kString;
            ++i;
            break;
          }
          if (c == '\'') {
            // Heuristic: digit separators (1'000'000) are not char
            // literals.
            if (i > 0 && std::isdigit(static_cast<unsigned char>(in[i - 1]))
                && i + 1 < in.size() &&
                std::isalnum(static_cast<unsigned char>(in[i + 1]))) {
              (*code)[i] = '\'';
              ++i;
              break;
            }
            (*code)[i] = '\'';
            state = State::kChar;
            ++i;
            break;
          }
          (*code)[i] = c;
          ++i;
          break;
        }
        case State::kBlockComment: {
          const std::size_t close = in.find("*/", i);
          if (close == std::string::npos) {
            comment_text->append(in, i, std::string::npos);
            i = in.size();
          } else {
            comment_text->append(in, i, close - i);
            state = State::kCode;
            i = close + 2;
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (in[i] == '\\') {
            i += 2;
          } else if (in[i] == quote) {
            (*code)[i] = quote;
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t close = in.find(raw_delim, i);
          if (close == std::string::npos) {
            i = in.size();
          } else {
            (*code)[close + raw_delim.size() - 1] = '"';
            state = State::kCode;
            i = close + raw_delim.size();
          }
          break;
        }
        case State::kLineComment:
          i = in.size();  // unreachable: reset at line start
          break;
      }
    }
  }
};

// Parses "omflp-lint: allow(a, b)" out of a line's comment text.
// Returns the listed rule names; empty when no marker is present.
std::vector<std::string> parse_allow(const std::string& comment) {
  static constexpr std::string_view kMarker = "omflp-lint:";
  const std::size_t at = comment.find(kMarker);
  if (at == std::string::npos) return {};
  std::size_t i = at + kMarker.size();
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i])))
    ++i;
  static constexpr std::string_view kAllow = "allow(";
  if (comment.compare(i, kAllow.size(), kAllow) != 0) return {};
  i += kAllow.size();
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) return {};
  std::vector<std::string> rules;
  std::string current;
  for (std::size_t j = i; j <= close; ++j) {
    const char c = comment[j];
    if (c == ',' || c == ')') {
      if (!current.empty()) rules.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  return rules;
}

bool line_has_code(const std::string& code_line) {
  return std::any_of(code_line.begin(), code_line.end(), [](char c) {
    return !std::isspace(static_cast<unsigned char>(c));
  });
}

const std::string kEmptyLine;

}  // namespace

SourceFile::SourceFile(std::string path, std::string_view content)
    : path_(std::move(path)), raw_(split_lines(content)) {
  code_.resize(raw_.size());
  allow_.resize(raw_.size());
  Stripper stripper;
  std::vector<std::vector<std::string>> pending;  // suppression-only lines
  std::vector<std::size_t> pending_lines;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    std::string comment;
    stripper.strip_line(raw_[i], &code_[i], &comment);
    auto rules = parse_allow(comment);
    if (rules.empty()) {
      if (line_has_code(code_[i]) && !pending.empty()) {
        // Standalone suppressions cover the next code line.
        for (auto& p : pending)
          allow_[i].insert(allow_[i].end(), p.begin(), p.end());
        pending.clear();
      }
      continue;
    }
    if (line_has_code(code_[i])) {
      allow_[i].insert(allow_[i].end(), rules.begin(), rules.end());
    } else {
      pending.push_back(std::move(rules));
    }
  }
}

const std::string& SourceFile::raw_line(std::size_t line_no) const {
  return line_no >= 1 && line_no <= raw_.size() ? raw_[line_no - 1]
                                                : kEmptyLine;
}

const std::string& SourceFile::code_line(std::size_t line_no) const {
  return line_no >= 1 && line_no <= code_.size() ? code_[line_no - 1]
                                                 : kEmptyLine;
}

bool SourceFile::allows(std::size_t line_no, std::string_view rule) const {
  if (line_no < 1 || line_no > allow_.size()) return false;
  for (const auto& name : allow_[line_no - 1])
    if (name == rule || name == "all") return true;
  return false;
}

std::string SourceFile::call_arguments(std::size_t line_no,
                                       std::size_t open_col,
                                       std::size_t max_lines) const {
  std::string args;
  int depth = 0;
  for (std::size_t l = line_no; l < line_no + max_lines && l <= num_lines();
       ++l) {
    const std::string& line = code_line(l);
    std::size_t c = l == line_no ? open_col : 0;
    for (; c < line.size(); ++c) {
      if (line[c] == '(') {
        ++depth;
        if (depth == 1) continue;  // the opening paren itself
      } else if (line[c] == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args.push_back(line[c]);
    }
    args.push_back(' ');
  }
  return std::string();  // unbalanced within the window
}

Linter::Linter() { register_builtin_rules(*this); }

void Linter::register_rule(RuleInfo info, RuleCheck check) {
  infos_.push_back(std::move(info));
  checks_.push_back(std::move(check));
}

std::vector<Diagnostic> Linter::lint_source(const std::string& path,
                                            std::string_view content) const {
  const SourceFile file(path, content);
  std::vector<Diagnostic> diags;
  for (const auto& check : checks_) check(file, diags);
  for (auto& d : diags) d.suppressed = file.allows(d.line, d.rule);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diags;
}

std::vector<Diagnostic> Linter::lint_file(const std::string& path) const {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("omflp-lint: cannot read " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return lint_source(path, buffer.str());
}

bool path_in_dir(std::string_view path, std::string_view component) {
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end =
        slash == std::string_view::npos ? path.size() : slash;
    if (path.substr(start, end - start) == component &&
        end != path.size())  // a directory component, not the basename
      return true;
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return false;
}

bool is_parse_path(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  // Tokenize the basename on non-alphanumeric characters.
  std::vector<std::string> tokens;
  std::string current;
  for (char c : base) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  for (const auto& t : tokens) {
    if (t == "io") return true;
    if (t.find("parse") != std::string::npos) return true;
    if (t.find("reader") != std::string::npos) return true;
    if (t.find("checkpoint") != std::string::npos) return true;
    if (t.find("ckpt") != std::string::npos) return true;
  }
  return false;
}

bool has_unsuppressed(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(),
                     [](const Diagnostic& d) { return !d.suppressed; });
}

std::string to_text(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  std::size_t suppressed = 0;
  for (const auto& d : diags) {
    os << d.path << ':' << d.line << ": [" << d.rule << "] " << d.message;
    if (d.suppressed) {
      os << "  (suppressed)";
      ++suppressed;
    }
    os << '\n';
  }
  os << diags.size() << " finding" << (diags.size() == 1 ? "" : "s") << " ("
     << suppressed << " suppressed, " << (diags.size() - suppressed)
     << " failing)\n";
  return os.str();
}

namespace {

void append_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Minimal strict parser for exactly the document to_json emits.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect(std::string_view literal) {
    skip_ws();
    if (text_.compare(pos_, literal.size(), literal) != 0)
      fail(std::string("expected '") + std::string(literal) + "'");
    pos_ += literal.size();
  }

  bool try_consume(std::string_view literal) {
    skip_ws();
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  std::string string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (value > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(value));
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  std::uint64_t number() {
    skip_ws();
    std::uint64_t value = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
      any = true;
    }
    if (!any) fail("expected number");
    return value;
  }

  bool boolean() {
    if (try_consume("true")) return true;
    if (try_consume("false")) return false;
    fail("expected boolean");
    return false;
  }

  void done() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("omflp-lint json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  std::size_t suppressed = 0;
  for (const auto& d : diags)
    if (d.suppressed) ++suppressed;
  os << "{\"format\":\"omflp-lint\",\"version\":1,\"findings\":[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    if (i) os << ',';
    os << "\n  {\"rule\":";
    append_json_string(os, d.rule);
    os << ",\"path\":";
    append_json_string(os, d.path);
    os << ",\"line\":" << d.line << ",\"message\":";
    append_json_string(os, d.message);
    os << ",\"suppressed\":" << (d.suppressed ? "true" : "false") << '}';
  }
  if (!diags.empty()) os << '\n';
  os << "],\"suppressed\":" << suppressed
     << ",\"failing\":" << (diags.size() - suppressed) << "}\n";
  return os.str();
}

std::vector<Diagnostic> from_json(std::string_view json) {
  JsonReader r(json);
  r.expect("{");
  r.expect("\"format\":\"omflp-lint\"");
  r.expect(",");
  r.expect("\"version\":1");
  r.expect(",");
  r.expect("\"findings\":[");
  std::vector<Diagnostic> diags;
  if (!r.try_consume("]")) {
    while (true) {
      Diagnostic d;
      r.expect("{");
      r.expect("\"rule\":");
      d.rule = r.string();
      r.expect(",");
      r.expect("\"path\":");
      d.path = r.string();
      r.expect(",");
      r.expect("\"line\":");
      d.line = static_cast<std::size_t>(r.number());
      r.expect(",");
      r.expect("\"message\":");
      d.message = r.string();
      r.expect(",");
      r.expect("\"suppressed\":");
      d.suppressed = r.boolean();
      r.expect("}");
      diags.push_back(std::move(d));
      if (r.try_consume("]")) break;
      r.expect(",");
    }
  }
  r.expect(",");
  r.expect("\"suppressed\":");
  const std::uint64_t suppressed = r.number();
  r.expect(",");
  r.expect("\"failing\":");
  const std::uint64_t failing = r.number();
  r.expect("}");
  r.done();
  std::uint64_t actual_suppressed = 0;
  for (const auto& d : diags)
    if (d.suppressed) ++actual_suppressed;
  if (suppressed != actual_suppressed ||
      failing != diags.size() - actual_suppressed)
    throw std::invalid_argument("omflp-lint json: summary counts disagree "
                                "with the findings array");
  return diags;
}

}  // namespace omflp::lint
