// omflp-lint — the project contract linter.
//
// The reproduction's correctness rests on contracts that used to be
// checked only at runtime (or found only by a long fuzz run): bitwise
// determinism across threads and shards, strict parsing with capped
// reservations, atomic artifact writes, pure hot-loop kernels, and
// decorrelated workload/algorithm seeds. Each rule here encodes one of
// those contracts as a static check so a violation surfaces at review
// time, file:line, before it ships.
//
// Deliberately dependency-free (std only) and independent of libomflp:
// the linter must build and run even when the library it polices does
// not. Checks are token-level over comment- and string-stripped source —
// a heuristic, not a compiler: precise enough to catch every historical
// bug class, cheap enough to run on every push, and overridable where a
// violation is deliberate:
//
//   do_risky_thing();  // omflp-lint: allow(rule-name) why it is fine
//
// A suppression on its own line covers the next code line; listing
// `all` covers every rule. Suppressed findings are still reported (and
// counted) but do not fail the run.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace omflp::lint {

struct Diagnostic {
  std::string rule;
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string message;
  bool suppressed = false;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// One source file, preprocessed for rule checks. `code_line` is the
/// raw line with comments and string/char-literal *contents* blanked to
/// spaces (delimiters kept), so token searches never match prose or
/// message text; columns line up with the raw line. Suppressions are
/// parsed from the raw text before blanking.
class SourceFile {
 public:
  SourceFile(std::string path, std::string_view content);

  const std::string& path() const noexcept { return path_; }
  std::size_t num_lines() const noexcept { return raw_.size(); }
  /// 1-based; out-of-range returns an empty line.
  const std::string& raw_line(std::size_t line_no) const;
  const std::string& code_line(std::size_t line_no) const;

  /// True when `rule` (or `all`) is allowed on `line_no` — by a trailing
  /// comment on the line itself or by a suppression-only line covering
  /// the next code line.
  bool allows(std::size_t line_no, std::string_view rule) const;

  /// Concatenated code text of a balanced-parenthesis argument list
  /// starting at `open_col` (the '(' itself) on `line_no`; empty when
  /// the parens do not balance within `max_lines`.
  std::string call_arguments(std::size_t line_no, std::size_t open_col,
                             std::size_t max_lines = 20) const;

 private:
  std::string path_;
  std::vector<std::string> raw_;
  std::vector<std::string> code_;
  // allow_[i] lists the rule names allowed on line i+1 ("all" = every).
  std::vector<std::vector<std::string>> allow_;
};

using RuleCheck =
    std::function<void(const SourceFile&, std::vector<Diagnostic>&)>;

/// The rule registry plus the driver. Construction registers the
/// built-in rules (rules.cpp); tests may add their own.
class Linter {
 public:
  Linter();

  const std::vector<RuleInfo>& rules() const noexcept { return infos_; }
  void register_rule(RuleInfo info, RuleCheck check);

  /// Lint in-memory content as if it lived at `path` (rules scope
  /// themselves by path). Findings come back sorted by line, with
  /// `suppressed` already resolved.
  std::vector<Diagnostic> lint_source(const std::string& path,
                                      std::string_view content) const;
  /// Reads and lints a file; throws std::runtime_error when unreadable.
  std::vector<Diagnostic> lint_file(const std::string& path) const;

 private:
  std::vector<RuleInfo> infos_;
  std::vector<RuleCheck> checks_;
};

void register_builtin_rules(Linter& linter);

/// Path predicates shared by the built-in rules (exposed for tests).
/// Components are '/'-separated; `in_dir` matches a whole component.
bool path_in_dir(std::string_view path, std::string_view component);
/// A "parse path": a basename token equal to "io" or containing
/// "parse", "reader", "checkpoint" or "ckpt" (io.cpp, io_detail.cpp,
/// stream_io.cpp, tracelog_io.cpp, checkpoint_io.cpp, parse.cpp, ...).
bool is_parse_path(std::string_view path);

bool has_unsuppressed(const std::vector<Diagnostic>& diags);

/// Text report: one "path:line: [rule] message" per finding
/// (suppressed findings tagged), then a one-line summary.
std::string to_text(const std::vector<Diagnostic>& diags);

/// JSON report (schema-versioned). from_json parses exactly what
/// to_json emits — the round trip is pinned by tests/test_lint.cpp —
/// and throws std::invalid_argument on malformed input.
std::string to_json(const std::vector<Diagnostic>& diags);
std::vector<Diagnostic> from_json(std::string_view json);

}  // namespace omflp::lint
