// Cost-model explorer — Theorem 18 hands-on.
//
// For a chosen |S|, sweeps the class-C exponent x and prints, side by
// side: the analytic Figure 2 factors, and the *measured* PD / RAND
// ratios on the adaptive adversarial distribution. Also verifies
// Condition 1 and subadditivity for each model instance, since the
// theorems only apply when they hold.
//
//   $ ./examples/cost_model_explorer [|S|] [trials]
#include <cstdlib>
#include <iostream>

#include "omflp.hpp"

int main(int argc, char** argv) {
  using namespace omflp;
  const CommodityId s =
      argc > 1 ? static_cast<CommodityId>(std::atoi(argv[1])) : 144;
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  std::cout << "Cost class C = { g_x(|σ|) = |σ|^(x/2) } on |S| = " << s
            << ", Theorem 2 sequence, OPT exact, " << trials
            << " trials per x.\n\n";

  TableWriter table({"x", "cond1 ok", "subadd ok", "PD ratio",
                     "RAND ratio", "fig2 upper", "fig2 lower"});
  for (const double x : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    // Verify the paper's assumptions hold for this member of C.
    PolynomialCostModel probe(s, x);
    Rng check_rng(1);
    const bool cond1 =
        !check_condition1_sampled(probe, 1, 400, check_rng).has_value();
    const bool subadd =
        !check_subadditivity_sampled(probe, 1, 400, check_rng).has_value();

    Summary pd_ratios, rand_ratios;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Rng rng(trial * 977 + static_cast<std::uint64_t>(x * 100) + 11);
      Theorem18Config cfg;
      cfg.num_commodities = s;
      cfg.exponent_x = x;
      const Instance instance = make_theorem18_instance(cfg, rng);

      PdOmflp pd;
      pd_ratios.add(measure_ratio(pd, instance).ratio);
      RandOmflp rand{RandOptions{.seed = trial + 1}};
      rand_ratios.add(measure_ratio(rand, instance).ratio);
    }

    table.begin_row()
        .add(x)
        .add(cond1 ? "yes" : "NO")
        .add(subadd ? "yes" : "NO")
        .add(pd_ratios.mean())
        .add(rand_ratios.mean())
        .add(theorem18_upper_factor(x, static_cast<double>(s)))
        .add(theorem18_lower_factor(x, static_cast<double>(s)));
  }
  table.write_markdown(std::cout);
  std::cout << "\nReading: measured ratios follow Figure 2's unimodal "
               "shape — worst near x = 1 (prediction matters most), easy "
               "at the endpoints (constant / linear costs).\n";
  return 0;
}
