// The Theorem 2 adversarial game, played move by move.
//
// Prints the Figure 1 view of a run: the adversary reveals one uniformly
// random commodity of its hidden set S' per round; the online algorithm
// reacts (connect / open small / open large); we track how many
// commodities the algorithm has covered ("predicted") and what it has
// paid, then compare the final cost against OPT = 1 and the bounds.
//
//   $ ./examples/adversarial_game [|S|] [seed] [pd|rand|noPred|perCommodity]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "omflp.hpp"

int main(int argc, char** argv) {
  using namespace omflp;
  const CommodityId s =
      argc > 1 ? static_cast<CommodityId>(std::atoi(argv[1])) : 64;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const std::string which = argc > 3 ? argv[3] : "pd";

  std::unique_ptr<OnlineAlgorithm> algorithm;
  if (which == "rand") {
    algorithm = std::make_unique<RandOmflp>(RandOptions{.seed = seed});
  } else if (which == "noPred") {
    algorithm = std::make_unique<PdOmflp>(
        PdOptions{.prediction = PdOptions::Prediction::kOff});
  } else if (which == "perCommodity") {
    algorithm = PerCommodityAdapter::fotakis();
  } else {
    algorithm = std::make_unique<PdOmflp>();
  }

  Rng rng(seed);
  Theorem2Config config;
  config.num_commodities = s;
  const Instance instance = make_theorem2_instance(config, rng);
  std::cout << "Theorem 2 game: |S| = " << s << ", hidden |S'| = "
            << theorem2_sequence_length(s) << ", cost g(|σ|) = ⌈|σ|/√|S|⌉, "
            << "OPT = 1 exactly.\nAlgorithm: " << algorithm->name()
            << "\n\n";

  // Drive the run manually so we can narrate between rounds.
  SolutionLedger ledger(instance.metric_ptr(), instance.cost_ptr());
  algorithm->reset(
      ProblemContext{instance.metric_ptr(), instance.cost_ptr()});

  TableWriter table({"round", "requested commodity", "ALG action",
                     "covered |⋃configs|", "cumulative cost"});
  CommoditySet covered(s);
  std::size_t known_facilities = 0;
  for (RequestId i = 0; i < instance.num_requests(); ++i) {
    const Request& request = instance.request(i);
    ledger.begin_request(request);
    algorithm->serve(request, ledger);
    ledger.finish_request();

    std::string action = "connect to existing";
    while (known_facilities < ledger.num_facilities()) {
      const OpenFacilityRecord& f = ledger.facility(known_facilities);
      covered |= f.config;
      action = f.config.is_full()
                   ? "open LARGE (all |S| commodities)"
                   : (f.config.count() == 1 ? "open small facility"
                                            : "open facility " +
                                                  f.config.to_string());
      ++known_facilities;
    }
    table.begin_row()
        .add(static_cast<long long>(i + 1))
        .add(static_cast<long long>(request.commodities.first()))
        .add(action)
        .add(static_cast<long long>(covered.count()))
        .add(ledger.total_cost());
  }
  table.write_markdown(std::cout);

  if (const auto violation = verify_solution(instance, ledger)) {
    std::cerr << "\ninvalid run: " << violation->what << "\n";
    return 1;
  }

  std::cout << "\nFinal: ALG = " << ledger.total_cost()
            << ", OPT = 1, ratio = " << ledger.total_cost() << "\n";
  std::cout << "Theorem 2 lower bound √|S|/16 = " << theorem2_bound(s)
            << "; Theorem 4 budget 15·√|S|·H_n = "
            << theorem4_bound(s, instance.num_requests()) << "\n";
  return 0;
}
