// Quickstart — the smallest complete use of the library.
//
// Build a metric space and a cost model, stream a handful of requests
// through PD-OMFLP, and inspect the priced, verified solution.
//
//   $ ./examples/quickstart
#include <iostream>

#include "omflp.hpp"

int main() {
  using namespace omflp;

  // A line metric with four candidate locations and |S| = 3 commodities
  // whose opening cost is sqrt-in-size (bundling pays off).
  auto metric = LineMetric::uniform_grid(/*n=*/4, /*length=*/30.0);
  auto cost = std::make_shared<PolynomialCostModel>(/*|S|=*/3,
                                                    /*x=*/1.0,
                                                    /*scale=*/5.0);

  std::vector<Request> requests = {
      {0, CommoditySet(3, {0})},       // commodity 0 at the left end
      {1, CommoditySet(3, {0, 1})},    // a bundle nearby
      {3, CommoditySet(3, {2})},       // commodity 2 at the right end
      {2, CommoditySet(3, {0, 1, 2})}, // everything, inland
      {1, CommoditySet(3, {1, 2})},
  };
  Instance instance(metric, cost, requests, "quickstart");

  // Run the paper's deterministic algorithm online.
  PdOmflp algorithm;
  const SolutionLedger ledger = run_online(algorithm, instance);

  // Always verify before trusting numbers.
  if (const auto violation = verify_solution(instance, ledger)) {
    std::cerr << "invalid solution: " << violation->what << "\n";
    return 1;
  }

  std::cout << "Algorithm: " << algorithm.name() << "\n";
  std::cout << "Total cost: " << ledger.total_cost() << " (opening "
            << ledger.opening_cost() << " + connection "
            << ledger.connection_cost() << ")\n\n";

  std::cout << "Facilities opened (irrevocably):\n";
  for (const OpenFacilityRecord& f : ledger.facilities()) {
    const auto& line = dynamic_cast<const LineMetric&>(instance.metric());
    std::cout << "  facility #" << f.id << " at x="
              << line.position(f.location) << " offering "
              << f.config.to_string() << " for " << f.open_cost
              << " (opened while serving request " << f.opened_during
              << ")\n";
  }

  std::cout << "\nPer-request assignments:\n";
  for (std::size_t i = 0; i < ledger.num_requests(); ++i) {
    const RequestRecord& rec = ledger.request_records()[i];
    std::cout << "  request " << i << " demanding "
              << rec.request.commodities.to_string() << " connects to "
              << rec.connected.size() << " facility(ies), paying "
              << rec.connection_cost << "\n";
  }

  // Compare against the offline optimum (exact for this tiny instance).
  const OptEstimate opt = estimate_opt(instance);
  std::cout << "\nOffline OPT (" << opt.method << "): " << opt.cost
            << "  →  competitive ratio " << ledger.total_cost() / opt.cost
            << "\n";
  return 0;
}
