// Replay — run any algorithm on a serialized instance file.
//
// The command-line companion to instance/io.hpp: generate or save a
// workload once, then replay it under different algorithms/policies and
// compare. With no file argument a demo instance is generated and its
// serialized form printed, so the tool also documents the format.
//
//   $ ./examples/replay_instance                       # demo + format
//   $ ./examples/replay_instance workload.omflp pd
//   $ ./examples/replay_instance workload.omflp rand 7
//   algorithms: any name from the algorithm registry — see `omflp list`
#include <fstream>
#include <iostream>

#include "omflp.hpp"

int main(int argc, char** argv) {
  using namespace omflp;
  try {
    if (argc < 2) {
      // Demo mode: generate, print the serialized form, replay it.
      Rng rng(7);
      UniformLineConfig cfg;
      cfg.num_points = 6;
      cfg.num_requests = 8;
      cfg.num_commodities = 4;
      cfg.max_demand = 3;
      const Instance demo = make_uniform_line(
          cfg, std::make_shared<PolynomialCostModel>(4, 1.0, 3.0), rng);
      std::cout << "No instance file given — demo instance in the "
                   "serialization format:\n\n"
                << instance_to_string(demo)
                << "\nSave this as workload.omflp and rerun:\n"
                   "  replay_instance workload.omflp pd\n";
      return 0;
    }

    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    const Instance instance = read_instance(file);
    const std::string algorithm_name = argc > 2 ? argv[2] : "pd";
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    // Same seed derivation as `omflp replay`, so both tools reproduce the
    // identical run for the same (trace, algorithm, seed).
    auto algorithm = default_algorithm_registry().make(
        algorithm_name, derive_algorithm_seed(seed));
    const SolutionLedger ledger = run_online(*algorithm, instance);
    if (const auto violation = verify_solution(instance, ledger)) {
      std::cerr << "INVALID SOLUTION: " << violation->what << "\n";
      return 1;
    }

    std::cout << "instance   " << instance.name() << " (n="
              << instance.num_requests() << ", |S|="
              << instance.num_commodities() << ", |M|="
              << instance.metric().num_points() << ")\n";
    std::cout << "algorithm  " << algorithm->name() << "\n";
    std::cout << "total      " << ledger.total_cost() << "  (opening "
              << ledger.opening_cost() << " + connection "
              << ledger.connection_cost() << ")\n";
    std::cout << "facilities " << ledger.num_facilities() << " ("
              << ledger.num_small_facilities() << " small, "
              << ledger.num_large_facilities() << " large)\n";

    const OptEstimate opt = estimate_opt(instance);
    std::cout << "offline    " << opt.cost << " (" << opt.method
              << (opt.exact ? ", exact" : ", upper bound") << ")\n";
    std::cout << "ratio      " << ledger.total_cost() / opt.cost << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
