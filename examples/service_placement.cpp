// Service placement — the paper's §1 motivation, end to end.
//
// A provider operates a network (weighted graph); clients appear at nodes
// over time and request bundles of services (commodities). Instantiating
// a service bundle in one VM costs less than separate VMs (sqrt-in-size
// opening cost), and a client talking to one node that hosts several of
// its services pays for a single network path.
//
// This example builds the network, streams Zipf-popular client requests,
// runs the full algorithm roster and prints a comparison table plus the
// deployment PD-OMFLP chose.
//
//   $ ./examples/service_placement [seed]
#include <cstdlib>
#include <iostream>

#include "omflp.hpp"

int main(int argc, char** argv) {
  using namespace omflp;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // ---- the scenario -------------------------------------------------------
  constexpr CommodityId kServices = 12;  // |S|
  Rng rng(seed);
  ServiceNetworkConfig config;
  config.num_nodes = 30;
  config.num_requests = 150;
  config.num_commodities = kServices;
  config.min_demand = 1;
  config.max_demand = 5;
  config.commodity_popularity_exponent = 0.9;  // some services are hot
  config.node_popularity_exponent = 0.7;       // some regions are busy

  // Opening cost: 6·sqrt(#services) per VM — bundling is worthwhile.
  auto cost = std::make_shared<PolynomialCostModel>(kServices, 1.0, 6.0);
  const Instance instance = make_service_network(config, cost, rng);
  std::cout << "Scenario: " << instance.name() << " on "
            << instance.metric().description() << ", cost "
            << instance.cost().description() << "\n\n";

  // ---- one offline reference ---------------------------------------------
  const OptEstimate opt = estimate_opt(instance);
  std::cout << "Offline reference (" << opt.method
            << (opt.exact ? ", exact" : ", upper bound") << "): " << opt.cost
            << "\n\n";

  // ---- the roster ---------------------------------------------------------
  struct Entry {
    std::string label;
    std::unique_ptr<OnlineAlgorithm> algorithm;
  };
  std::vector<Entry> roster;
  roster.push_back({"PD-OMFLP (Algorithm 1)", std::make_unique<PdOmflp>()});
  roster.push_back({"RAND-OMFLP (Algorithm 2)",
                    std::make_unique<RandOmflp>(RandOptions{.seed = seed})});
  roster.push_back(
      {"PD without prediction",
       std::make_unique<PdOmflp>(
           PdOptions{.prediction = PdOptions::Prediction::kOff})});
  roster.push_back(
      {"per-service Fotakis (trivial baseline)",
       std::unique_ptr<OnlineAlgorithm>(PerCommodityAdapter::fotakis())});
  roster.push_back({"greedy nearest-or-open",
                    std::make_unique<NearestOrOpen>()});

  TableWriter table({"algorithm", "total", "opening", "connection",
                     "facilities", "large", "vs offline"});
  for (Entry& entry : roster) {
    const SolutionLedger ledger = run_online(*entry.algorithm, instance);
    if (const auto violation = verify_solution(instance, ledger)) {
      std::cerr << entry.label << ": INVALID (" << violation->what << ")\n";
      return 1;
    }
    table.begin_row()
        .add(entry.label)
        .add(ledger.total_cost())
        .add(ledger.opening_cost())
        .add(ledger.connection_cost())
        .add(ledger.num_facilities())
        .add(ledger.num_large_facilities())
        .add(ledger.total_cost() / opt.cost);
  }
  table.write_markdown(std::cout);

  // ---- PD's deployment, in provider terms ---------------------------------
  PdOmflp pd;
  const SolutionLedger ledger = run_online(pd, instance);
  std::cout << "\nPD-OMFLP's deployment plan (" << ledger.num_facilities()
            << " VM placements):\n";
  for (const OpenFacilityRecord& f : ledger.facilities()) {
    std::cout << "  node " << f.location << ": "
              << (f.config.is_full() ? "FULL service stack"
                                     : "services " + f.config.to_string())
              << "  (setup cost " << f.open_cost << ")\n";
  }
  return 0;
}
